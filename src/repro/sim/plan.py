"""Compiled run-plans: static-plan lowering + vectorized wave/terminal drains.

The schedule×partition search engine (:mod:`repro.partition.search`) needs
orders of magnitude more simulated runs per second than the general
event-driven executor delivers, without giving up its exactness.  This
module gets there in two steps:

* :func:`compile_plan` lowers one static :class:`ExecutionPlan` into a
  :class:`CompiledPlan` of flat per-instance arrays — compute durations
  (signature-memoized roofline arithmetic), statically-known resource ids,
  and eager-writeback flags.  Plans that cannot be lowered (dynamic
  scheduler, unpinned instances) raise
  :class:`~repro.errors.PlanCompileError` and callers fall back to the
  general engine.

* :class:`PlanEvaluator` runs the compiled plan through the **real**
  engine — ``_EvalRun`` subclasses the executor's ``_Run``, so memory
  coherence, transfers, barriers and trace lanes are exact by
  construction — and adds a *terminal drain*: once no transfer is on the
  wire, no barrier or write-back is pending, and the rest of the graph is
  provably a set of per-resource back-to-back chains, the remaining
  completions are computed in one shot with
  :func:`repro.sim._vec.chain_bounds` (one 2-D ``cumsum`` across all
  resource frontiers — the cross-resource generalization of the
  single-stream ``_K_FINISH_BATCH`` path) instead of thousands of heap
  events.  Under ``REPRO_NO_NUMPY=1`` the bounds come from the
  bit-identical sequential fallback.

Exactness contract (enforced by
``tests/integration/test_plan_eval_differential.py``): in ``summary``
detail the evaluated artifact's makespan, per-resource busy times and
every other summary aggregate equal the general engine's bit-for-bit; in
``full`` detail the drain is disabled entirely, so artifacts are
byte-identical trivially.  The drain only commits when a validation walk
proves the engine would have produced the same timeline:

* every not-yet-done instance has a statically known resource, and every
  unmet dependence of a remaining instance lives on the *same* resource
  (so each resource's future is an independent FIFO chain — release order
  equals the engine's sorted-successor dispatch order, and chains run
  back-to-back with no idle gaps);
* a shadow copy of the memory directory confirms every remaining read is
  already resident in its target space (no transfers would be issued);
* instances that face a synchronization point (and would issue eager
  write-backs) write pairwise-disjoint regions, so replaying their
  write-backs at their computed end times commutes with committing all
  drained writes up front.

Applications that synchronize every iteration used to be the drain's
accepted blind spot — pending barriers blocked it at all times, so
per-iteration-sync programs (the paper's classes II–IV under forced-sync
strategies) replayed every event through the engine.  The **wave drain**
closes that gap: between two consecutive barriers a static plan is a
sync-free sub-graph, so when a barrier completes the evaluator tries to
prove and commit the *entire next epoch plus the following barrier*
analytically, leaving a single anchor event at the epoch's end.  The
wave gates (all pure — nothing is mutated until every gate passes):

* **W0 — quiet world**: no transfer on the wire, no pending write-back,
  no other ready work, and a next barrier to hand the clock to;
* **W1 — single layer**: every wave member's dependences are already
  done (or are the completing barrier itself) — intra-wave edges fall
  back to the engine;
* **W2 — pure transfer prediction**: per member, the memory directory's
  *pre-wave* missing sets must be satisfiable by plain host-to-device
  copies (the host copy is coherent after the barrier flush, so no
  device-to-host staging may be needed), and members sharing a resource
  must be fully resident — this predicts, without mutating, exactly the
  transfers the engine's ``ensure`` calls would issue at dispatch;
* **W3 — one member per device space**: cross-member wire hazards and
  link-order ambiguity cannot arise, and each D2H channel has at most
  one eager-write-back source;
* **W4 — disjoint writes**: written regions are pairwise disjoint
  across members, so committing writes/write-backs in instance-id order
  commutes with the engine's completion-time order;
* **W5 — fenced successors**: each member's only successor is the next
  barrier (strategies adding extra edges fall back to the engine).

On success the commit replays the engine's exact arithmetic: real
``ensure``/``write``/``writeback``/``flush_to_host`` directory calls in
dispatch order, transfer ops timed on a per-link cursor, compute chains
bounded by one :func:`repro.sim._vec.chain_bounds` cumsum across all
resources, rows bulk-appended with ``extend_rows``, and the modeled
barrier's completion — ``max(last compute + quiescence overhead, flush
lands, write-back lands)`` — scheduled as one closure-free anchor event
(``FastSimulator.schedule_call``, the cross-resource generalization of
the ``_K_FINISH_BATCH`` stream commit).  Wave after wave then drains
through anchor recursion, O(1) events per barrier epoch.

When any gate fails the wave simply does not commit and the run
continues on the ordinary event loop — still exact, just slower.  The
fallback ladder is therefore: wave drain (synced epochs) → terminal
drain (sync-free tails) → general event loop (everything else), each
rung bit-identical to the one below it by construction.
"""

from __future__ import annotations

import os
from array import array
from collections import deque
from dataclasses import dataclass, replace

from repro.artifact import RunArtifact, check_detail
from repro.errors import PlanCompileError, SimulationError
from repro.platform.topology import HOST_SPACE, Platform
from repro.runtime.executor import RuntimeConfig, _Run
from repro.runtime.schedulers.base import StaticScheduler
from repro.sim import _vec
from repro.sim.engine import PRIORITY_COMPLETION

#: do not bother draining tails smaller than this — the validation walk
#: has a fixed cost the event loop beats on tiny remainders
DRAIN_MIN_INSTANCES = 24

#: process-wide drain telemetry.  The search driver snapshots this around
#: a sweep to surface silent engine fallbacks (a compile-failed or
#: gate-failed plan still runs, identically, just slower) instead of
#: letting them masquerade as slow candidates.
_STATS = {
    "evaluations": 0,
    "waves_drained": 0,
    "waves_replayed": 0,
    "wave_fallbacks": 0,
    "terminal_drains": 0,
    "compile_errors": 0,
}


def drain_stats() -> dict[str, int]:
    """Snapshot of the process-wide drain counters."""
    return dict(_STATS)


def reset_drain_stats() -> None:
    """Zero the drain counters (test isolation)."""
    for key in _STATS:
        _STATS[key] = 0


def record_compile_error() -> None:
    """Count one :class:`~repro.errors.PlanCompileError` engine fallback."""
    _STATS["compile_errors"] += 1


def plan_eval_enabled() -> bool:
    """Whether ``run_plan`` should route static plans through the evaluator.

    Read per call (like the engine seam's ``REPRO_NO_FAST_ENGINE``), so
    tests and the search driver can flip ``REPRO_PLAN_EVAL`` at any point.
    """
    return os.environ.get("REPRO_PLAN_EVAL", "0") in ("1", "true", "on")


@dataclass(frozen=True)
class CompiledPlan:
    """One static plan lowered to flat per-instance arrays.

    ``durations``/``resource_ids``/``writeback_flags`` are indexed by
    ``instance_id`` (barrier slots hold ``0.0``/``None``/``False``).
    ``drainable`` is precomputed: every compute instance's resource is
    statically known, so the terminal drain may even be attempted.

    ``succs_sorted``/``region_rows``/``cross_deps`` are the drain walk's
    per-instance lookups hoisted to compile time: successor ids in the
    engine's release order, flat ``(region, reads, writes)`` rows, and
    the (usually empty) dependences that live on a *different* resource
    — the only ones the drain's gate 1 must re-check at runtime.
    ``kernel_names``/``los``/``his``/``sizes`` are the drain commit's
    trace-row columns, precomputed so the bulk lane extend never touches
    instance property descriptors.

    ``wave_members`` maps each barrier's instance id to the compute
    instances of the epoch *after* it (program order = id order), and
    ``wave_next`` to the id of the barrier fencing that epoch — the wave
    drain's O(1) epoch-advance tables.  The final (unfenced) epoch has
    no ``wave_next`` entry and is left to the terminal drain.

    ``wave_sig`` maps a barrier to its wave's *isomorphism class*: two
    waves share a signature id exactly when their members agree
    position-by-position on resource, duration, region rows (by shared
    identity), write-back flag, and trace columns, and every member is
    canonically fenced (sole dep = the leading barrier, sole successor =
    the trailing barrier).  Consecutive same-signature waves resolve to
    identical transfer programs once the directory state is periodic
    (see ``_EvalRun._replay_waves``), which is what lets the steady part
    of a synced loop commit without re-running the gates.  Waves with a
    non-canonical fence get no entry.
    """

    graph: object
    scheduler: StaticScheduler
    config: RuntimeConfig
    durations: array
    resource_ids: tuple
    writeback_flags: tuple
    drainable: bool
    n_compute: int
    n_barriers: int
    succs_sorted: tuple
    region_rows: tuple
    cross_deps: tuple
    kernel_names: tuple
    los: tuple
    his: tuple
    sizes: tuple
    wave_members: dict
    wave_next: dict
    wave_sig: dict


def compile_plan(
    plan, platform: Platform, runtime_config: RuntimeConfig | None = None
) -> CompiledPlan:
    """Lower ``plan`` for :class:`PlanEvaluator`, or raise.

    Raises :class:`~repro.errors.PlanCompileError` when the plan is not
    statically lowerable: the scheduler takes runtime decisions, or an
    instance carries no resource/device pin.  ``plan.runtime_overrides``
    are applied to ``runtime_config`` here, exactly as ``run_plan`` does.
    """
    scheduler = plan.scheduler
    if type(scheduler) is not StaticScheduler:
        raise PlanCompileError(
            f"plan uses scheduler {scheduler.name!r}; only purely static "
            "plans compile"
        )
    config = runtime_config or RuntimeConfig()
    if plan.runtime_overrides:
        config = replace(config, **plan.runtime_overrides)

    graph = plan.graph
    resources = platform.compute_resources(cpu_threads=config.cpu_threads)
    by_id = {r.resource_id: r for r in resources}
    by_device: dict[str, list] = {}
    for r in resources:
        by_device.setdefault(r.device.device_id, []).append(r)
    host_id = platform.host.device_id

    invocations = graph.program.invocations
    last_invocation_id = (
        invocations[-1].invocation_id if invocations else -1
    )

    n = len(graph.instances)
    durations = array("d", bytes(8 * n))
    resource_ids: list = [None] * n
    writeback_flags = [False] * n
    duration_memo: dict[tuple, float] = {}
    writes_memo: dict[tuple, bool] = {}
    drainable = True
    n_compute = 0
    n_barriers = 0

    for inst in graph.instances:
        if inst.is_barrier:
            n_barriers += 1
            continue
        n_compute += 1
        i = inst.instance_id
        if inst.pinned_resource is not None:
            resource = by_id.get(inst.pinned_resource)
            if resource is None:
                raise PlanCompileError(
                    f"instance {i} pinned to unknown resource "
                    f"{inst.pinned_resource!r}"
                )
            resource_ids[i] = resource.resource_id
        elif inst.pinned_device is not None:
            device_resources = by_device.get(inst.pinned_device)
            if not device_resources:
                raise PlanCompileError(
                    f"instance {i} pinned to unknown device "
                    f"{inst.pinned_device!r}"
                )
            resource = device_resources[0]
            if len(device_resources) == 1:
                resource_ids[i] = resource.resource_id
            else:
                # the static scheduler round-robins multi-resource
                # devices by runtime load; not statically known
                drainable = False
        else:
            raise PlanCompileError(
                f"instance {i} is unpinned; static plans pin every instance"
            )

        kernel = inst.kernel
        key = (id(kernel), resource.resource_id, inst.lo, inst.hi,
               inst.invocation.n)
        duration = duration_memo.get(key)
        if duration is None:
            # must match _Run._start_compute's arithmetic exactly: the
            # drain's chained ends have to be bit-identical to the floats
            # the engine would have produced event by event
            duration = kernel.chunk_time(
                resource.device,
                kernel.work_units(inst.lo, inst.hi),
                inst.invocation.n,
                share=resource.share,
            ) + config.task_creation_overhead_s
            duration_memo[key] = duration
        durations[i] = duration

        if config.eager_writeback and resource_ids[i] is not None:
            space = (
                HOST_SPACE
                if resource.device.device_id == host_id
                else resource.device.device_id
            )
            if space != HOST_SPACE:
                faces_sync = inst.invocation.sync_after or (
                    config.final_flush
                    and inst.invocation.invocation_id == last_invocation_id
                )
                if faces_sync:
                    wkey = (id(kernel), inst.lo, inst.hi, inst.invocation.n)
                    writes = writes_memo.get(wkey)
                    if writes is None:
                        writes = any(
                            mode.writes for _, mode in inst.regions()
                        )
                        writes_memo[wkey] = writes
                    writeback_flags[i] = writes

    # hoist the drain walk's per-instance lookups: release order,
    # region rows (shared per signature, like the executor's memo), and
    # the statically-known cross-resource dependences
    succs_sorted: list = [()] * n
    region_rows: list = [()] * n
    cross_deps: list = [()] * n
    kernel_names: list = [None] * n
    los: list = [0] * n
    his: list = [0] * n
    sizes: list = [0] * n
    rows_memo: dict[tuple, tuple] = {}
    for inst in graph.instances:
        if inst.is_barrier:
            continue
        i = inst.instance_id
        if inst.succs:
            succs_sorted[i] = tuple(sorted(inst.succs))
        kernel = inst.kernel
        kernel_names[i] = kernel.name
        los[i] = inst.lo
        his[i] = inst.hi
        sizes[i] = inst.size
        # keyed by kernel *object*: looped programs reuse one Kernel per
        # iteration, while DAG apps emit distinct same-named kernels
        # over different arrays (Cholesky's per-tile gemms)
        rkey = (id(kernel), inst.lo, inst.hi, inst.invocation.n)
        rows = rows_memo.get(rkey)
        if rows is None:
            rows = rows_memo[rkey] = tuple(
                (region, mode.reads, mode.writes)
                for region, mode in inst.regions()
            )
        region_rows[i] = rows
        rid = resource_ids[i]
        crossing = tuple(
            dep for dep in inst.deps if resource_ids[dep] != rid
        )
        if crossing:
            cross_deps[i] = crossing

    # wave tables: one pass over program order groups each barrier with
    # the epoch it releases and the next barrier fencing that epoch
    wave_members: dict[int, tuple] = {}
    wave_next: dict[int, int] = {}
    prev_barrier: int | None = None
    epoch: list[int] = []
    for inst in graph.instances:
        if inst.is_barrier:
            if prev_barrier is not None:
                wave_members[prev_barrier] = tuple(epoch)
                wave_next[prev_barrier] = inst.instance_id
            prev_barrier = inst.instance_id
            epoch = []
        elif prev_barrier is not None:
            epoch.append(inst.instance_id)
    if prev_barrier is not None:
        # the unfenced final epoch: members recorded for completeness,
        # but no wave_next entry — the terminal drain owns this tail
        wave_members[prev_barrier] = tuple(epoch)

    # wave isomorphism classes: fenced waves whose members agree on
    # every compiled column get one signature id, keyed so the steady
    # interior of a synced loop (identical iterations) collapses to a
    # single class the runtime can template
    wave_sig: dict[int, int] = {}
    sig_ids: dict[tuple, int] = {}
    inst_by_id = graph.instances
    for b_id, nxt_id in wave_next.items():
        members = wave_members[b_id]
        if not members:
            continue
        nxt_only = (nxt_id,)
        canonical = True
        cols = []
        for i in members:
            deps = inst_by_id[i].deps
            if len(deps) != 1 or tuple(deps)[0] != b_id:
                canonical = False
                break
            if succs_sorted[i] != nxt_only:
                canonical = False
                break
            cols.append((
                resource_ids[i], durations[i], id(region_rows[i]),
                writeback_flags[i], kernel_names[i], los[i], his[i],
                sizes[i],
            ))
        if not canonical:
            continue
        key = tuple(cols)
        sig = sig_ids.get(key)
        if sig is None:
            sig = sig_ids[key] = len(sig_ids)
        wave_sig[b_id] = sig

    return CompiledPlan(
        graph=graph,
        scheduler=scheduler,
        config=config,
        durations=durations,
        resource_ids=tuple(resource_ids),
        writeback_flags=tuple(writeback_flags),
        drainable=drainable,
        n_compute=n_compute,
        n_barriers=n_barriers,
        succs_sorted=tuple(succs_sorted),
        region_rows=tuple(region_rows),
        cross_deps=tuple(cross_deps),
        kernel_names=tuple(kernel_names),
        los=tuple(los),
        his=tuple(his),
        sizes=tuple(sizes),
        wave_members=wave_members,
        wave_next=wave_next,
        wave_sig=wave_sig,
    )


def evaluate_plan(
    plan,
    platform: Platform,
    *,
    runtime_config: RuntimeConfig | None = None,
    detail: str = "summary",
    compiled: CompiledPlan | None = None,
) -> RunArtifact:
    """Compile (unless precompiled) and evaluate one plan.

    Raises :class:`~repro.errors.PlanCompileError` for plans the compiler
    rejects; callers needing a universal entry point catch it and fall
    back to :class:`~repro.runtime.executor.RuntimeEngine`.
    """
    if compiled is None:
        compiled = compile_plan(plan, platform, runtime_config)
    return PlanEvaluator(platform, compiled).evaluate(detail=detail)


class PlanEvaluator:
    """Evaluates one compiled plan; reusable across calls."""

    def __init__(self, platform: Platform, compiled: CompiledPlan) -> None:
        self.platform = platform
        self.compiled = compiled

    def evaluate(self, *, detail: str = "summary") -> RunArtifact:
        detail = check_detail(detail)
        _STATS["evaluations"] += 1
        run = _EvalRun(self.platform, self.compiled, detail)
        return run.go(detail=detail)


class _DrainTail:
    """Replays one drained instance's eager write-back at its end time."""

    __slots__ = ("run", "inst", "space")

    def __init__(self, run, inst, space):
        self.run = run
        self.inst = inst
        self.space = space

    def __call__(self) -> None:
        self.run._drain_writeback(self.inst, self.space)


def _noop() -> None:
    """Clock anchor: advances ``sim.now`` to the drained chains' last end."""


class _WaveAnchor:
    """Oracle-engine wave anchor: fires the modeled barrier's completion.

    The fast engine schedules the anchor through its closure-free
    ``schedule_call``; the oracle :class:`~repro.sim.engine.Simulator`
    gets this slotted equivalent so both consume exactly one sequence
    number per wave.
    """

    __slots__ = ("run", "inst")

    def __init__(self, run, inst):
        self.run = run
        self.inst = inst

    def __call__(self) -> None:
        self.run._mark_done(self.inst)


class _EvalRun(_Run):
    """The executor's ``_Run`` plus compiled durations and the drain."""

    def __init__(self, platform: Platform, compiled: CompiledPlan,
                 detail: str) -> None:
        super().__init__(platform, compiled.config, compiled.graph,
                         compiled.scheduler)
        self._compiled = compiled
        # full-detail runs stay on the pure event loop: per-row metadata
        # dicts and exact event interleaving make the artifact
        # byte-identical to the general engine with zero special cases
        self._drain_enabled = detail == "summary" and compiled.drainable
        self._drained = False
        self._drain_retry = True
        self._wires = 0
        self._undone = compiled.n_compute
        self._barriers_left = compiled.n_barriers
        self._waves_drained = 0
        self._waves_replayed = 0
        self._wave_fallbacks = 0
        #: steady-wave templates, keyed by signature: after one
        #: fully-gated commit of a wave, later waves of the same
        #: isomorphism class replay as a pure float recurrence (see
        #: _replay_waves); keyed per class because ping-pong loops
        #: alternate between two classes every iteration
        self._tmpls: dict[int, tuple] = {}
        host_id = platform.host.device_id
        #: resource id -> memory space, shared by both drains
        self._space_of: dict[str, str] = {
            r.resource_id: (
                HOST_SPACE if r.device.device_id == host_id
                else r.device.device_id
            )
            for r in self.resources
        }
        #: per-resource dispatch-order queues of not-yet-completed
        #: instances (head = currently running occupation)
        self._res_dispatched: dict[str, deque] = {
            r.resource_id: deque() for r in self.resources
        }

    # -- engine hooks (exact behavior preserved, counters added) ---------

    def go(self, *, detail: str = "full") -> RunArtifact:
        # mirrors _Run.go with one extra drain attempt once the initial
        # dispatch wave has settled (all-host plans never transfer, so
        # the wire counter alone would never trigger it)
        self.scheduler.start(self.graph, self._ctx())
        for inst in self.graph.instances:
            if self.remaining[inst.instance_id] == 0:
                self.ready.append(inst)
        self._pump()
        self._maybe_drain()
        self.sim.run(max_events=self.config.max_events)
        if len(self.done) != len(self.graph.instances):
            stuck = [
                i.label() for i in self.graph.instances
                if i.instance_id not in self.done
            ]
            raise SimulationError(
                f"deadlock: {len(stuck)} instances never ran, "
                f"e.g. {stuck[:5]}"
            )
        if self.config.final_flush:
            self._final_flush()
            self.sim.run(max_events=self.config.max_events)
        return self._result(detail)

    def _start_compute(self, inst, resource, space, transfer_total):
        self._res_dispatched[resource.resource_id].append(inst)
        kernel = inst.kernel
        duration = self._compiled.durations[inst.instance_id]
        self.sim_resources[resource.resource_id].occupy(
            duration,
            label="",
            category="compute",
            on_complete=(
                self._complete_cb,
                (inst, resource, space, duration, transfer_total),
            ),
            lane=self.compute_lanes[resource.resource_id],
            args=(kernel.name, inst.lo, inst.hi, inst.instance_id),
            size=inst.size,
            kernel=kernel.name,
            meta={
                "kernel": kernel.name,
                "size": inst.size,
                "device_kind": resource.device.kind.value,
                "device": resource.device.device_id,
                "invocation": inst.invocation.invocation_id,
                "iteration": inst.invocation.iteration,
            },
            own_meta=True,
        )

    def _complete_compute(self, args):
        if self._drained:
            # an absorbed head: its writes and bookkeeping were committed
            # at drain time; only a pending eager write-back remains
            inst = args[0]
            if self._compiled.writeback_flags[inst.instance_id]:
                self._drain_writeback(inst, args[2])
            return
        self._res_dispatched[args[1].resource_id].popleft()
        self._complete(*args)

    def _issue_transfer(self, op, *, on_complete=None) -> None:
        self._wires += 1
        super()._issue_transfer(op, on_complete=on_complete)

    def _transfer_done(self, xfer) -> None:
        self._wires -= 1
        super()._transfer_done(xfer)
        if self._wires == 0 and not self._drained:
            self._drain_retry = True
            self._maybe_drain()

    def _mark_done(self, inst) -> None:
        if inst.is_barrier:
            # a completing barrier fences a fresh epoch: try to commit
            # the whole wave analytically before the engine dispatches it
            if self._try_wave(inst):
                return
            self._barriers_left -= 1
            super()._mark_done(inst)
            # the last barrier's wave has now been pumped; for transfer-free
            # tails (Only-CPU loops) no wire transition will ever re-arm
            if not self._barriers_left and not self._drained and not self._wires:
                self._drain_retry = True
                self._maybe_drain()
        else:
            self._undone -= 1
            super()._mark_done(inst)

    # -- the wave drain --------------------------------------------------

    def _wave_fallback(self) -> bool:
        """Count one gate failure; the engine replays the epoch exactly."""
        self._wave_fallbacks += 1
        _STATS["wave_fallbacks"] += 1
        return False

    def _try_wave(self, barrier) -> bool:
        """Commit the epoch after ``barrier`` analytically, or refuse.

        Called when ``barrier`` completes, *before* the engine pumps its
        successors.  On success the whole inter-barrier wave — member
        transfers, compute chains, eager write-backs, and the next
        barrier's flush/quiescence — is committed as trace rows plus one
        anchor event at the modeled barrier's completion time; the
        anchor recursively re-enters this method, draining wave after
        wave with O(1) events per epoch.  On refusal nothing has been
        mutated and the caller falls through to the ordinary event
        path.
        """
        compiled = self._compiled
        b_id = barrier.instance_id
        nxt_id = compiled.wave_next.get(b_id)
        members = compiled.wave_members.get(b_id)
        if (
            nxt_id is None
            or not members
            or not self._drain_enabled
            or self._drained
        ):
            # not a provable wave by construction (full detail, final
            # epoch, empty epoch) — not counted as a gate fallback
            return False

        # -- gates: all pure, nothing mutated until every one passes ------
        # W0: quiet world — no wire traffic, write-backs, or ready work
        if self._wires or self._pending_writebacks or self.ready:
            return self._wave_fallback()

        # steady-state fast path: a recorded template for this wave's
        # signature replays the whole remaining stretch of isomorphic
        # waves as a float recurrence — no gates, no directory walks
        sig = compiled.wave_sig.get(b_id)
        if sig is not None and sig in self._tmpls:
            return self._replay_waves(barrier)

        done = self.done
        instances = self.graph.instances
        rids = compiled.resource_ids
        succs_sorted = compiled.succs_sorted
        region_rows = compiled.region_rows
        space_of = self._space_of
        nxt_only = (nxt_id,)

        res_members: dict[str, list] = {}
        seen_spaces: set[str] = set()
        for i in members:
            rid = rids[i]
            if rid is None:
                return self._wave_fallback()
            # W1: single layer — intra-wave edges fall back to the engine
            for dep in instances[i].deps:
                if dep != b_id and dep not in done:
                    return self._wave_fallback()
            # W5: fenced successors — the next barrier and nothing else
            if succs_sorted[i] != nxt_only:
                return self._wave_fallback()
            group = res_members.get(rid)
            if group is None:
                res_members[rid] = [i]
                space = space_of[rid]
                # W3: at most one member per non-host device space
                if space != HOST_SPACE:
                    if space in seen_spaces:
                        return self._wave_fallback()
                    seen_spaces.add(space)
            else:
                group.append(i)

        # W2: pure transfer prediction against the pre-wave directory —
        # host members must be fully resident (the engine would otherwise
        # stage device flushes), device members may only need plain
        # host-to-device copies, and members sharing a resource must not
        # transfer at all (their FIFO chain anchors at the barrier time)
        valid = self.memory._valid
        for rid, group in res_members.items():
            space = space_of[rid]
            shared = len(group) > 1
            if space == HOST_SPACE:
                for i in group:
                    for region, reads, _writes in region_rows[i]:
                        if reads and not valid[region.array][
                            HOST_SPACE
                        ].contains(region.start, region.end):
                            return self._wave_fallback()
            else:
                for i in group:
                    for region, reads, _writes in region_rows[i]:
                        if not reads:
                            continue
                        missing = valid[region.array][space].missing(
                            region.start, region.end
                        )
                        if not missing:
                            continue
                        if shared:
                            return self._wave_fallback()
                        host = valid[region.array][HOST_SPACE]
                        for lo, hi in missing:
                            if not host.contains(lo, hi):
                                # would stage a d2h flush first; ensure()
                                # could then mutate before a later bail
                                return self._wave_fallback()

        # W4: written regions pairwise disjoint across members, so the
        # id-order commit below commutes with completion-order writes
        write_rows: list = []
        for i in members:
            for region, _reads, writes in region_rows[i]:
                if writes:
                    write_rows.append((i, region))
        for a in range(len(write_rows) - 1):
            ia, ra = write_rows[a]
            for ib, rb in write_rows[a + 1:]:
                if ia != ib and ra.overlaps(rb):
                    return self._wave_fallback()

        # steady-wave capture: with invalidating barriers every wave
        # starts from the canonical post-flush directory state (host
        # fully valid, devices empty), so the transfer ops resolved in
        # the commit below repeat verbatim for every later wave of this
        # signature — record them once so _replay_waves can skip the
        # gates and the directory entirely from the next wave on
        record = (
            sig is not None and self.config.barrier_invalidates_devices
        )
        p1_ops: dict | None = {} if record else None
        wb_log: list | None = [] if record else None

        # -- commit: replay the engine's arithmetic analytically ----------
        sim = self.sim
        t0 = sim.now
        memory = self.memory
        durations = compiled.durations
        kernel_names = compiled.kernel_names
        los = compiled.los
        his = compiled.his
        sizes = compiled.sizes
        flags = compiled.writeback_flags
        links = self.links
        lanes = self.transfer_lanes
        transfer_bytes = self.transfer_bytes
        #: per-link-channel busy cursor (keyed by SimResource object, so
        #: a half-duplex link's shared channel serializes both directions)
        link_busy: dict = {}

        def model_ops(ops, ready_time):
            # serial occupation on each op's link channel: start at the
            # later of the issue time and the link cursor, end after the
            # link's transfer time — the exact floats the engine's
            # occupy/_finish chain produces event by event
            land = ready_time
            for op in ops:
                direction = "h2d" if op.is_h2d else "d2h"
                key = f"{op.device_space}:{direction}"
                link = links[key]
                cursor = link_busy.get(link, ready_time)
                start = cursor if cursor > ready_time else ready_time
                end = start + self._transfer_duration(op)
                link_busy[link] = end
                transfer_bytes[direction] += op.nbytes
                lanes[key].append(start, end, (op.array, op.start, op.end))
                if end > land:
                    land = end
            return land

        # phase 1 — reads: real ensure() calls in dispatch order (the
        # gates guarantee they emit only the predicted h2d copies); a
        # lone member's chain anchors where its last transfer lands,
        # shared-resource members chain FIFO from the barrier time
        t0s: list[float] = []
        rows: list[array] = []
        order = list(res_members)
        for rid in order:
            group = res_members[rid]
            space = space_of[rid]
            anchor = t0
            if len(group) == 1:
                i = group[0]
                ops: list = []
                for region, reads, _writes in region_rows[i]:
                    if reads:
                        ops.extend(memory.ensure(region, space))
                if ops:
                    anchor = model_ops(ops, t0)
                if record:
                    p1_ops[rid] = tuple(ops)
            else:
                for i in group:
                    for region, reads, _writes in region_rows[i]:
                        if reads:
                            memory.ensure(region, space)
            t0s.append(anchor)
            rows.append(array("d", [durations[j] for j in group]))

        # compute chains: one cumsum across every resource frontier,
        # bulk-appended per lane (bit-identical scalar fallback inside)
        bounds = _vec.chain_bounds(t0s, rows)
        member_end: dict[int, float] = {}
        t_ready = t0
        for rid, b in zip(order, bounds):
            group = res_members[rid]
            names = [kernel_names[j] for j in group]
            self.compute_lanes[rid].extend_rows(
                b[:-1],
                b[1:],
                str_args=names,
                args_a=[los[j] for j in group],
                args_b=[his[j] for j in group],
                args_c=list(group),
                sizes=[sizes[j] for j in group],
                kernels=names,
            )
            for idx, j in enumerate(group):
                member_end[j] = float(b[idx + 1])
            last = float(b[len(group)])
            if last > t_ready:
                t_ready = last

        # phase 2 — writes and eager write-backs in id order (W4 makes
        # this commute with the engine's completion order); write-back
        # ops go on the wire when their member's compute ends
        wb_land = t0
        for i in members:
            space = space_of[rids[i]]
            rows_i = region_rows[i]
            for region, _reads, writes in rows_i:
                if writes:
                    memory.write(region, space)
            if flags[i]:
                end_i = member_end[i]
                for region, _reads, writes in rows_i:
                    if writes:
                        ops = memory.writeback(region, space)
                        if ops:
                            if record:
                                wb_log.append((i, tuple(ops)))
                            land = model_ops(ops, end_i)
                            if land > wb_land:
                                wb_land = land

        # the modeled barrier: flush at the last compute's end, overhead
        # in parallel, completion once write-backs have landed too —
        # exactly the engine's _BarrierArm + _wb_waiters semantics
        nxt = instances[nxt_id]
        flush_ops = memory.flush_to_host(
            invalidate=self.config.barrier_invalidates_devices
        )
        t_done = t_ready + self._barrier_overhead(nxt)
        if flush_ops:
            land = model_ops(flush_ops, t_ready)
            if land > t_done:
                t_done = land
        if wb_land > t_done:
            t_done = wb_land

        # bookkeeping: super()._mark_done minus the ready-list appends —
        # every release the members would have triggered is the modeled
        # barrier, which completes through the anchor instead
        remaining = self.remaining
        done.add(b_id)
        self._barriers_left -= 1
        for succ in barrier.succs:
            remaining[succ] -= 1
        for i in members:
            done.add(i)
            remaining[nxt_id] -= 1
        self._undone -= len(members)
        self._waves_drained += 1
        _STATS["waves_drained"] += 1

        # one closure-free anchor event per wave; both engines consume
        # exactly one sequence number here
        schedule_call = getattr(sim, "schedule_call", None)
        if schedule_call is not None:
            schedule_call(t_done, self._mark_done, nxt)
        else:
            sim.at(t_done, _WaveAnchor(self, nxt),
                   priority=PRIORITY_COMPLETION)
        if record:
            self._build_template(sig, members, res_members, p1_ops,
                                 wb_log, flush_ops)
        return True

    def _build_template(self, sig, members, res_members, p1_ops, wb_log,
                        flush_ops) -> None:
        """Freeze this wave's resolved commit into a replayable template.

        Everything a wave commit touches is reduced to plain tuples:
        per-group member positions, duration chains, and trace-row
        columns, plus the resolved transfer ops as ``(lane_key, link,
        duration, nbytes, direction, array, lo, hi)`` rows.  Validity
        rests on the canonical post-flush state (see ``_try_wave``'s
        capture comment): an invalidating barrier wipes device residency
        and revalidates the host, so an isomorphic wave resolves ensure,
        write-back, and flush ops to exactly these rows again.
        """
        compiled = self._compiled
        durations = compiled.durations
        kernel_names = compiled.kernel_names
        los = compiled.los
        his = compiled.his
        sizes = compiled.sizes
        links = self.links
        pos_of = {i: p for p, i in enumerate(members)}

        def op_rows(ops):
            rows = []
            for op in ops:
                direction = "h2d" if op.is_h2d else "d2h"
                key = f"{op.device_space}:{direction}"
                rows.append((
                    key, links[key], self._transfer_duration(op),
                    op.nbytes, direction, op.array, op.start, op.end,
                ))
            return tuple(rows)

        groups = tuple(
            (
                rid,
                tuple(pos_of[i] for i in group),
                tuple(durations[i] for i in group),
                op_rows(p1_ops.get(rid, ())),
                [kernel_names[i] for i in group],
                [los[i] for i in group],
                [his[i] for i in group],
                [sizes[i] for i in group],
            )
            for rid, group in res_members.items()
        )
        wbs = tuple((pos_of[i], op_rows(ops)) for i, ops in wb_log)
        flush = op_rows(flush_ops)
        nbytes = {"h2d": 0, "d2h": 0}
        for _, _, _, ops, _, _, _, _ in groups:
            for row in ops:
                nbytes[row[4]] += row[3]
        for _, ops in wbs:
            for row in ops:
                nbytes[row[4]] += row[3]
        for row in flush:
            nbytes[row[4]] += row[3]
        self._tmpls[sig] = (groups, wbs, flush, nbytes["h2d"], nbytes["d2h"])

    def _replay_waves(self, barrier) -> bool:
        """Commit every remaining templated wave as a float recurrence.

        The float arithmetic below is op-for-op the commit sequence of
        ``_try_wave`` (which itself mirrors the engine event by event):
        per-link cursors rooted at the wave's barrier time, scalar
        left-to-right duration chains (``_vec.chain_bounds``'s contract
        is bit-identity with exactly this recurrence), write-backs timed
        from their member's end, flush and overhead folded into the next
        barrier's completion.  The stretch runs as long as each wave's
        signature has a recorded template — ping-pong loops alternate
        between two classes, so the lookup is per wave, not one class
        for the whole stretch.  Trace rows accumulate per lane across
        the stretch and land in bulk ``extend_rows`` calls — per-lane
        row order is exactly the per-wave order, which is all the
        summary's group-ordered accumulations observe.  The directory is
        never touched: replayed waves would leave it exactly where the
        template wave's invalidating flush already put it.  One anchor
        event resumes the ordinary path at the last barrier.
        """
        compiled = self._compiled
        tmpls = self._tmpls
        wave_sig = compiled.wave_sig
        wave_members = compiled.wave_members
        wave_next = compiled.wave_next
        instances = self.graph.instances
        done = self.done
        remaining = self.remaining
        overhead = self.config.barrier_overhead_s
        sim = self.sim
        #: lane_key -> (starts, ends, str_args, args_a, args_b)
        xfer_acc: dict[str, tuple] = {}
        #: rid -> (starts, ends, str_args, args_a, args_b, args_c, sizes)
        comp_acc: dict[str, tuple] = {}
        nb_h2d_total = 0
        nb_d2h_total = 0

        t_prev = sim.now
        b = barrier
        b_id = b.instance_id
        tmpl = tmpls[wave_sig[b_id]]
        waves = 0
        while True:
            groups, wbs, flush, nb_h2d, nb_d2h = tmpl
            members = wave_members[b_id]
            nxt_id = wave_next[b_id]
            t0 = t_prev
            link_busy: dict = {}
            t_ready = t0
            member_end = [0.0] * len(members)
            for rid, positions, durs, ops, names, glos, ghis, gszs in groups:
                anchor = t0
                for key, link, dur, _nb, _d, arr, lo, hi in ops:
                    cursor = link_busy.get(link, t0)
                    start = cursor if cursor > t0 else t0
                    end = start + dur
                    link_busy[link] = end
                    acc = xfer_acc.get(key)
                    if acc is None:
                        acc = xfer_acc[key] = ([], [], [], [], [])
                    acc[0].append(start)
                    acc[1].append(end)
                    acc[2].append(arr)
                    acc[3].append(lo)
                    acc[4].append(hi)
                    if end > anchor:
                        anchor = end
                acc = comp_acc.get(rid)
                if acc is None:
                    acc = comp_acc[rid] = ([], [], [], [], [], [], [])
                starts, ends, strs, aas, abs_, args_c, szs = acc
                strs.extend(names)
                aas.extend(glos)
                abs_.extend(ghis)
                szs.extend(gszs)
                bprev = anchor
                for pos, dur in zip(positions, durs):
                    bend = bprev + dur
                    starts.append(bprev)
                    ends.append(bend)
                    args_c.append(members[pos])
                    member_end[pos] = bend
                    bprev = bend
                if bprev > t_ready:
                    t_ready = bprev
            wb_land = t0
            for pos, ops in wbs:
                end_i = member_end[pos]
                land = end_i
                for key, link, dur, _nb, _d, arr, lo, hi in ops:
                    cursor = link_busy.get(link, end_i)
                    start = cursor if cursor > end_i else end_i
                    end = start + dur
                    link_busy[link] = end
                    acc = xfer_acc.get(key)
                    if acc is None:
                        acc = xfer_acc[key] = ([], [], [], [], [])
                    acc[0].append(start)
                    acc[1].append(end)
                    acc[2].append(arr)
                    acc[3].append(lo)
                    acc[4].append(hi)
                    if end > land:
                        land = end
                if land > wb_land:
                    wb_land = land
            nxt = instances[nxt_id]
            t_done = t_ready + (overhead if nxt.succs else 0.0)
            if flush:
                land = t_ready
                for key, link, dur, _nb, _d, arr, lo, hi in flush:
                    cursor = link_busy.get(link, t_ready)
                    start = cursor if cursor > t_ready else t_ready
                    end = start + dur
                    link_busy[link] = end
                    acc = xfer_acc.get(key)
                    if acc is None:
                        acc = xfer_acc[key] = ([], [], [], [], [])
                    acc[0].append(start)
                    acc[1].append(end)
                    acc[2].append(arr)
                    acc[3].append(lo)
                    acc[4].append(hi)
                    if end > land:
                        land = end
                if land > t_done:
                    t_done = land
            if wb_land > t_done:
                t_done = wb_land
            nb_h2d_total += nb_h2d
            nb_d2h_total += nb_d2h

            done.add(b_id)
            self._barriers_left -= 1
            for succ in b.succs:
                remaining[succ] -= 1
            for i in members:
                done.add(i)
                remaining[nxt_id] -= 1
            self._undone -= len(members)
            waves += 1
            t_prev = t_done
            b = nxt
            b_id = nxt_id
            sig = wave_sig.get(b_id)
            tmpl = tmpls.get(sig) if sig is not None else None
            if tmpl is None:
                break

        compute_lanes = self.compute_lanes
        for rid, acc in comp_acc.items():
            starts, ends, strs, aas, abs_, args_c, szs = acc
            compute_lanes[rid].extend_rows(
                starts,
                ends,
                str_args=strs,
                args_a=aas,
                args_b=abs_,
                args_c=args_c,
                sizes=szs,
                kernels=strs,
            )
        lanes = self.transfer_lanes
        for key, (starts, ends, strs, aas, abs_) in xfer_acc.items():
            lanes[key].extend_rows(
                starts, ends, str_args=strs, args_a=aas, args_b=abs_,
            )
        if nb_h2d_total:
            self.transfer_bytes["h2d"] += nb_h2d_total
        if nb_d2h_total:
            self.transfer_bytes["d2h"] += nb_d2h_total

        self._waves_drained += waves
        self._waves_replayed += waves
        _STATS["waves_drained"] += waves
        _STATS["waves_replayed"] += waves

        # one anchor for the whole stretch; the last barrier resumes the
        # ordinary path (terminal drain or event loop) from t_prev
        schedule_call = getattr(sim, "schedule_call", None)
        if schedule_call is not None:
            schedule_call(t_prev, self._mark_done, b)
        else:
            sim.at(t_prev, _WaveAnchor(self, b),
                   priority=PRIORITY_COMPLETION)
        return True

    # -- the terminal drain ----------------------------------------------

    def _maybe_drain(self) -> None:
        if (
            self._drained
            or not self._drain_enabled
            or not self._drain_retry
            or self._wires
            or self._pending_writebacks
            or self._barriers_left
            or self._undone < DRAIN_MIN_INSTANCES
        ):
            return
        if not self._try_drain():
            # re-armed on the next wire-empty transition; pointless to
            # rewalk the graph until the world has changed
            self._drain_retry = False

    def _try_drain(self) -> bool:
        if self.ready:
            return False
        compiled = self._compiled
        graph = self.graph
        done = self.done
        rids = compiled.resource_ids
        instances = graph.instances
        succs_sorted = compiled.succs_sorted
        cross_deps = compiled.cross_deps

        dispatched: set[int] = set()
        for dq in self._res_dispatched.values():
            for inst in dq:
                dispatched.add(inst.instance_id)

        # gate 1: every remaining (undispatched, not done) instance's
        # unmet dependences live on its own resource — each resource's
        # future is then an independent FIFO chain (the cross-resource
        # dependence set is static, so only those need the done check)
        remaining_ids: list[int] = []
        for inst in instances:
            i = inst.instance_id
            if i in done or i in dispatched:
                continue
            if rids[i] is None:
                return False
            remaining_ids.append(i)
            for dep in cross_deps[i]:
                if dep not in done:
                    return False

        # gate 2: per-resource Kahn walk in FIFO readiness order — the
        # exact order the engine would dispatch (completions release
        # successors in sorted id order onto the same resource's queue)
        indeg = {i: self.remaining[i] for i in remaining_ids}
        chains: dict[str, list] = {}
        chained = 0
        for rid, dq in self._res_dispatched.items():
            chain: list = []
            work = deque(dq)
            while work:
                inst = work.popleft()
                chain.append(inst)
                chained += 1
                for succ in succs_sorted[inst.instance_id]:
                    left = indeg.get(succ)
                    if left is None:
                        continue
                    left -= 1
                    indeg[succ] = left
                    if left == 0:
                        work.append(instances[succ])
            chains[rid] = chain
        if chained != len(remaining_ids) + len(dispatched):
            return False

        # gate 3: shadow directory walk — every remaining read must
        # already be resident (the engine would otherwise issue
        # transfers, which the chains cannot model); writes are applied
        # along the way so later chain links see earlier results
        memory = self.memory
        spaces = tuple(memory._spaces)
        shadow: dict[tuple, object] = {}
        shadow_get = shadow.get
        real = memory._valid
        space_of = self._space_of

        wb_regions: list = []
        flags = self._compiled.writeback_flags
        region_rows = compiled.region_rows

        def shadow_entry(arr, sp):
            key = (arr, sp)
            entry = shadow_get(key)
            if entry is None:
                entry = shadow[key] = real[arr][sp].copy()
            return entry

        for rid, chain in chains.items():
            space = space_of[rid]
            others = tuple(sp for sp in spaces if sp != space)
            # per-array bound methods of this chain's shadow entries —
            # one dict hit per region instead of tuple-keyed lookups and
            # attribute walks on every chain link
            ops_of: dict = {}
            ops_get = ops_of.get
            for inst in chain:
                i = inst.instance_id
                check_reads = i not in dispatched
                for region, reads, writes in region_rows[i]:
                    arr = region.array
                    ops = ops_get(arr)
                    if ops is None:
                        entry = shadow_entry(arr, space)
                        ops = ops_of[arr] = (
                            entry.contains,
                            entry.add,
                            tuple(
                                shadow_entry(arr, sp).remove
                                for sp in others
                            ),
                        )
                    if check_reads and reads:
                        if not ops[0](region.start, region.end):
                            return False
                    if writes:
                        ops[1](region.start, region.end)
                        for remove in ops[2]:
                            remove(region.start, region.end)
                        if flags[i]:
                            wb_regions.append(region)

        # gate 4: replayed write-backs must commute with the up-front
        # write commit — their written regions must be pairwise disjoint
        if len(wb_regions) > 1:
            for i, a in enumerate(wb_regions):
                for b in wb_regions[i + 1:]:
                    if a.overlaps(b):
                        return False

        # -- commit: the engine provably produces these chains ------------
        # a resource with nothing running cannot anchor a chain (every
        # remaining instance traces back to a dispatched seed); an empty
        # queue with a non-empty chain means the walk above went wrong
        sim = self.sim
        now = sim.now
        t0s: list[float] = []
        rows: list[array] = []
        order: list[str] = []
        durations = compiled.durations
        kernel_names = compiled.kernel_names
        los = compiled.los
        his = compiled.his
        sizes = compiled.sizes
        for rid, chain in chains.items():
            if not self._res_dispatched[rid]:
                if chain:
                    return False
                continue
            lane = self.compute_lanes[rid]
            if not len(lane.ends):
                return False  # staged head row unavailable; stay exact
            order.append(rid)
            # the running head's row is the lane's last staged append;
            # its end anchors the chain with the exact float the pending
            # completion event carries
            t0s.append(lane.ends[-1])
            rows.append(
                array("d", [durations[inst.instance_id]
                            for inst in chain[1:]])
            )

        bounds = _vec.chain_bounds(t0s, rows)

        t_max = now
        tails: list[tuple[float, int, _DrainTail]] = []
        seq = 0
        for rid, b in zip(order, bounds):
            chain = chains[rid]
            k = len(b) - 1
            head_end = float(b[0]) if k == 0 else float(b[k])
            if head_end > t_max:
                t_max = head_end
            space = space_of[rid]
            drained = chain[1:]
            if k:
                ids = [inst.instance_id for inst in drained]
                names = [kernel_names[j] for j in ids]
                lane = self.compute_lanes[rid]
                lane.extend_rows(
                    b[:-1],
                    b[1:],
                    str_args=names,
                    args_a=[los[j] for j in ids],
                    args_b=[his[j] for j in ids],
                    args_c=ids,
                    sizes=[sizes[j] for j in ids],
                    kernels=names,
                )
            for j, inst in enumerate(drained):
                if flags[inst.instance_id]:
                    tails.append(
                        (float(b[j + 1]), seq, _DrainTail(self, inst, space))
                    )
                    seq += 1
            # the running head completes through its own pending event
            # (see _complete_compute); everything queued behind it is now
            # accounted for by the bulk rows above
            self.sim_resources[rid]._queue.clear()

        # apply the shadow directory: all drained writes land at once
        for (arr, space), entry in shadow.items():
            real[arr][space] = entry

        done.update(range(len(instances)))
        self._undone = 0
        self._drained = True
        _STATS["terminal_drains"] += 1

        for end, _, tail in sorted(tails, key=lambda t: (t[0], t[1])):
            sim.at(end, tail, priority=PRIORITY_COMPLETION)
        # anchor the clock so the final flush starts when the last chain
        # ends, exactly as the event loop would have left it
        if t_max > now:
            sim.at(t_max, _noop, priority=PRIORITY_COMPLETION)
        return True

    def _drain_writeback(self, inst, space) -> None:
        # replica of _Run._complete's eager write-back block, fired at
        # the drained instance's computed end time
        for region, mode in self._regions(inst):
            if mode.writes:
                for op in self.memory.writeback(region, space):
                    self._pending_writebacks += 1
                    self._issue_transfer(
                        op, on_complete=self._writeback_done
                    )
