"""Compiled run-plans: static-plan lowering + a terminal vectorized drain.

The schedule×partition search engine (:mod:`repro.partition.search`) needs
orders of magnitude more simulated runs per second than the general
event-driven executor delivers, without giving up its exactness.  This
module gets there in two steps:

* :func:`compile_plan` lowers one static :class:`ExecutionPlan` into a
  :class:`CompiledPlan` of flat per-instance arrays — compute durations
  (signature-memoized roofline arithmetic), statically-known resource ids,
  and eager-writeback flags.  Plans that cannot be lowered (dynamic
  scheduler, unpinned instances) raise
  :class:`~repro.errors.PlanCompileError` and callers fall back to the
  general engine.

* :class:`PlanEvaluator` runs the compiled plan through the **real**
  engine — ``_EvalRun`` subclasses the executor's ``_Run``, so memory
  coherence, transfers, barriers and trace lanes are exact by
  construction — and adds a *terminal drain*: once no transfer is on the
  wire, no barrier or write-back is pending, and the rest of the graph is
  provably a set of per-resource back-to-back chains, the remaining
  completions are computed in one shot with
  :func:`repro.sim._vec.chain_bounds` (one 2-D ``cumsum`` across all
  resource frontiers — the cross-resource generalization of the
  single-stream ``_K_FINISH_BATCH`` path) instead of thousands of heap
  events.  Under ``REPRO_NO_NUMPY=1`` the bounds come from the
  bit-identical sequential fallback.

Exactness contract (enforced by
``tests/integration/test_plan_eval_differential.py``): in ``summary``
detail the evaluated artifact's makespan, per-resource busy times and
every other summary aggregate equal the general engine's bit-for-bit; in
``full`` detail the drain is disabled entirely, so artifacts are
byte-identical trivially.  The drain only commits when a validation walk
proves the engine would have produced the same timeline:

* every not-yet-done instance has a statically known resource, and every
  unmet dependence of a remaining instance lives on the *same* resource
  (so each resource's future is an independent FIFO chain — release order
  equals the engine's sorted-successor dispatch order, and chains run
  back-to-back with no idle gaps);
* a shadow copy of the memory directory confirms every remaining read is
  already resident in its target space (no transfers would be issued);
* instances that face a synchronization point (and would issue eager
  write-backs) write pairwise-disjoint regions, so replaying their
  write-backs at their computed end times commutes with committing all
  drained writes up front.

When any check fails the drain simply does not commit — the run continues
on the ordinary event loop, still exact, just slower.  Applications that
synchronize every iteration (pending barriers at all times) therefore
never drain; the big wins come from sync-free loops, which is exactly the
population the search sweeps.

One accepted blind spot, by construction rather than by luck: barriers
and in-flight transfers block the drain, so the only timeline ambiguity
the literature's batched drains hit — two same-time completions releasing
work into one queue from *different* resources — cannot arise here (the
same-resource dependence gate forbids the cross-resource release).
"""

from __future__ import annotations

import os
from array import array
from collections import deque
from dataclasses import dataclass, replace

from repro.artifact import RunArtifact, check_detail
from repro.errors import PlanCompileError, SimulationError
from repro.platform.topology import HOST_SPACE, Platform
from repro.runtime.executor import RuntimeConfig, _Run
from repro.runtime.schedulers.base import StaticScheduler
from repro.sim import _vec
from repro.sim.engine import PRIORITY_COMPLETION

#: do not bother draining tails smaller than this — the validation walk
#: has a fixed cost the event loop beats on tiny remainders
DRAIN_MIN_INSTANCES = 24


def plan_eval_enabled() -> bool:
    """Whether ``run_plan`` should route static plans through the evaluator.

    Read per call (like the engine seam's ``REPRO_NO_FAST_ENGINE``), so
    tests and the search driver can flip ``REPRO_PLAN_EVAL`` at any point.
    """
    return os.environ.get("REPRO_PLAN_EVAL", "0") in ("1", "true", "on")


@dataclass(frozen=True)
class CompiledPlan:
    """One static plan lowered to flat per-instance arrays.

    ``durations``/``resource_ids``/``writeback_flags`` are indexed by
    ``instance_id`` (barrier slots hold ``0.0``/``None``/``False``).
    ``drainable`` is precomputed: every compute instance's resource is
    statically known, so the terminal drain may even be attempted.

    ``succs_sorted``/``region_rows``/``cross_deps`` are the drain walk's
    per-instance lookups hoisted to compile time: successor ids in the
    engine's release order, flat ``(region, reads, writes)`` rows, and
    the (usually empty) dependences that live on a *different* resource
    — the only ones the drain's gate 1 must re-check at runtime.
    ``kernel_names``/``los``/``his``/``sizes`` are the drain commit's
    trace-row columns, precomputed so the bulk lane extend never touches
    instance property descriptors.
    """

    graph: object
    scheduler: StaticScheduler
    config: RuntimeConfig
    durations: array
    resource_ids: tuple
    writeback_flags: tuple
    drainable: bool
    n_compute: int
    n_barriers: int
    succs_sorted: tuple
    region_rows: tuple
    cross_deps: tuple
    kernel_names: tuple
    los: tuple
    his: tuple
    sizes: tuple


def compile_plan(
    plan, platform: Platform, runtime_config: RuntimeConfig | None = None
) -> CompiledPlan:
    """Lower ``plan`` for :class:`PlanEvaluator`, or raise.

    Raises :class:`~repro.errors.PlanCompileError` when the plan is not
    statically lowerable: the scheduler takes runtime decisions, or an
    instance carries no resource/device pin.  ``plan.runtime_overrides``
    are applied to ``runtime_config`` here, exactly as ``run_plan`` does.
    """
    scheduler = plan.scheduler
    if type(scheduler) is not StaticScheduler:
        raise PlanCompileError(
            f"plan uses scheduler {scheduler.name!r}; only purely static "
            "plans compile"
        )
    config = runtime_config or RuntimeConfig()
    if plan.runtime_overrides:
        config = replace(config, **plan.runtime_overrides)

    graph = plan.graph
    resources = platform.compute_resources(cpu_threads=config.cpu_threads)
    by_id = {r.resource_id: r for r in resources}
    by_device: dict[str, list] = {}
    for r in resources:
        by_device.setdefault(r.device.device_id, []).append(r)
    host_id = platform.host.device_id

    invocations = graph.program.invocations
    last_invocation_id = (
        invocations[-1].invocation_id if invocations else -1
    )

    n = len(graph.instances)
    durations = array("d", bytes(8 * n))
    resource_ids: list = [None] * n
    writeback_flags = [False] * n
    duration_memo: dict[tuple, float] = {}
    writes_memo: dict[tuple, bool] = {}
    drainable = True
    n_compute = 0
    n_barriers = 0

    for inst in graph.instances:
        if inst.is_barrier:
            n_barriers += 1
            continue
        n_compute += 1
        i = inst.instance_id
        if inst.pinned_resource is not None:
            resource = by_id.get(inst.pinned_resource)
            if resource is None:
                raise PlanCompileError(
                    f"instance {i} pinned to unknown resource "
                    f"{inst.pinned_resource!r}"
                )
            resource_ids[i] = resource.resource_id
        elif inst.pinned_device is not None:
            device_resources = by_device.get(inst.pinned_device)
            if not device_resources:
                raise PlanCompileError(
                    f"instance {i} pinned to unknown device "
                    f"{inst.pinned_device!r}"
                )
            resource = device_resources[0]
            if len(device_resources) == 1:
                resource_ids[i] = resource.resource_id
            else:
                # the static scheduler round-robins multi-resource
                # devices by runtime load; not statically known
                drainable = False
        else:
            raise PlanCompileError(
                f"instance {i} is unpinned; static plans pin every instance"
            )

        kernel = inst.kernel
        key = (id(kernel), resource.resource_id, inst.lo, inst.hi,
               inst.invocation.n)
        duration = duration_memo.get(key)
        if duration is None:
            # must match _Run._start_compute's arithmetic exactly: the
            # drain's chained ends have to be bit-identical to the floats
            # the engine would have produced event by event
            duration = kernel.chunk_time(
                resource.device,
                kernel.work_units(inst.lo, inst.hi),
                inst.invocation.n,
                share=resource.share,
            ) + config.task_creation_overhead_s
            duration_memo[key] = duration
        durations[i] = duration

        if config.eager_writeback and resource_ids[i] is not None:
            space = (
                HOST_SPACE
                if resource.device.device_id == host_id
                else resource.device.device_id
            )
            if space != HOST_SPACE:
                faces_sync = inst.invocation.sync_after or (
                    config.final_flush
                    and inst.invocation.invocation_id == last_invocation_id
                )
                if faces_sync:
                    wkey = (id(kernel), inst.lo, inst.hi, inst.invocation.n)
                    writes = writes_memo.get(wkey)
                    if writes is None:
                        writes = any(
                            mode.writes for _, mode in inst.regions()
                        )
                        writes_memo[wkey] = writes
                    writeback_flags[i] = writes

    # hoist the drain walk's per-instance lookups: release order,
    # region rows (shared per signature, like the executor's memo), and
    # the statically-known cross-resource dependences
    succs_sorted: list = [()] * n
    region_rows: list = [()] * n
    cross_deps: list = [()] * n
    kernel_names: list = [None] * n
    los: list = [0] * n
    his: list = [0] * n
    sizes: list = [0] * n
    rows_memo: dict[tuple, tuple] = {}
    for inst in graph.instances:
        if inst.is_barrier:
            continue
        i = inst.instance_id
        if inst.succs:
            succs_sorted[i] = tuple(sorted(inst.succs))
        kernel = inst.kernel
        kernel_names[i] = kernel.name
        los[i] = inst.lo
        his[i] = inst.hi
        sizes[i] = inst.size
        # keyed by kernel *object*: looped programs reuse one Kernel per
        # iteration, while DAG apps emit distinct same-named kernels
        # over different arrays (Cholesky's per-tile gemms)
        rkey = (id(kernel), inst.lo, inst.hi, inst.invocation.n)
        rows = rows_memo.get(rkey)
        if rows is None:
            rows = rows_memo[rkey] = tuple(
                (region, mode.reads, mode.writes)
                for region, mode in inst.regions()
            )
        region_rows[i] = rows
        rid = resource_ids[i]
        crossing = tuple(
            dep for dep in inst.deps if resource_ids[dep] != rid
        )
        if crossing:
            cross_deps[i] = crossing

    return CompiledPlan(
        graph=graph,
        scheduler=scheduler,
        config=config,
        durations=durations,
        resource_ids=tuple(resource_ids),
        writeback_flags=tuple(writeback_flags),
        drainable=drainable,
        n_compute=n_compute,
        n_barriers=n_barriers,
        succs_sorted=tuple(succs_sorted),
        region_rows=tuple(region_rows),
        cross_deps=tuple(cross_deps),
        kernel_names=tuple(kernel_names),
        los=tuple(los),
        his=tuple(his),
        sizes=tuple(sizes),
    )


def evaluate_plan(
    plan,
    platform: Platform,
    *,
    runtime_config: RuntimeConfig | None = None,
    detail: str = "summary",
    compiled: CompiledPlan | None = None,
) -> RunArtifact:
    """Compile (unless precompiled) and evaluate one plan.

    Raises :class:`~repro.errors.PlanCompileError` for plans the compiler
    rejects; callers needing a universal entry point catch it and fall
    back to :class:`~repro.runtime.executor.RuntimeEngine`.
    """
    if compiled is None:
        compiled = compile_plan(plan, platform, runtime_config)
    return PlanEvaluator(platform, compiled).evaluate(detail=detail)


class PlanEvaluator:
    """Evaluates one compiled plan; reusable across calls."""

    def __init__(self, platform: Platform, compiled: CompiledPlan) -> None:
        self.platform = platform
        self.compiled = compiled

    def evaluate(self, *, detail: str = "summary") -> RunArtifact:
        detail = check_detail(detail)
        run = _EvalRun(self.platform, self.compiled, detail)
        return run.go(detail=detail)


class _DrainTail:
    """Replays one drained instance's eager write-back at its end time."""

    __slots__ = ("run", "inst", "space")

    def __init__(self, run, inst, space):
        self.run = run
        self.inst = inst
        self.space = space

    def __call__(self) -> None:
        self.run._drain_writeback(self.inst, self.space)


def _noop() -> None:
    """Clock anchor: advances ``sim.now`` to the drained chains' last end."""


class _EvalRun(_Run):
    """The executor's ``_Run`` plus compiled durations and the drain."""

    def __init__(self, platform: Platform, compiled: CompiledPlan,
                 detail: str) -> None:
        super().__init__(platform, compiled.config, compiled.graph,
                         compiled.scheduler)
        self._compiled = compiled
        # full-detail runs stay on the pure event loop: per-row metadata
        # dicts and exact event interleaving make the artifact
        # byte-identical to the general engine with zero special cases
        self._drain_enabled = detail == "summary" and compiled.drainable
        self._drained = False
        self._drain_retry = True
        self._wires = 0
        self._undone = compiled.n_compute
        self._barriers_left = compiled.n_barriers
        #: per-resource dispatch-order queues of not-yet-completed
        #: instances (head = currently running occupation)
        self._res_dispatched: dict[str, deque] = {
            r.resource_id: deque() for r in self.resources
        }

    # -- engine hooks (exact behavior preserved, counters added) ---------

    def go(self, *, detail: str = "full") -> RunArtifact:
        # mirrors _Run.go with one extra drain attempt once the initial
        # dispatch wave has settled (all-host plans never transfer, so
        # the wire counter alone would never trigger it)
        self.scheduler.start(self.graph, self._ctx())
        for inst in self.graph.instances:
            if self.remaining[inst.instance_id] == 0:
                self.ready.append(inst)
        self._pump()
        self._maybe_drain()
        self.sim.run(max_events=self.config.max_events)
        if len(self.done) != len(self.graph.instances):
            stuck = [
                i.label() for i in self.graph.instances
                if i.instance_id not in self.done
            ]
            raise SimulationError(
                f"deadlock: {len(stuck)} instances never ran, "
                f"e.g. {stuck[:5]}"
            )
        if self.config.final_flush:
            self._final_flush()
            self.sim.run(max_events=self.config.max_events)
        return self._result(detail)

    def _start_compute(self, inst, resource, space, transfer_total):
        self._res_dispatched[resource.resource_id].append(inst)
        kernel = inst.kernel
        duration = self._compiled.durations[inst.instance_id]
        self.sim_resources[resource.resource_id].occupy(
            duration,
            label="",
            category="compute",
            on_complete=(
                self._complete_cb,
                (inst, resource, space, duration, transfer_total),
            ),
            lane=self.compute_lanes[resource.resource_id],
            args=(kernel.name, inst.lo, inst.hi, inst.instance_id),
            size=inst.size,
            kernel=kernel.name,
            meta={
                "kernel": kernel.name,
                "size": inst.size,
                "device_kind": resource.device.kind.value,
                "device": resource.device.device_id,
                "invocation": inst.invocation.invocation_id,
                "iteration": inst.invocation.iteration,
            },
            own_meta=True,
        )

    def _complete_compute(self, args):
        if self._drained:
            # an absorbed head: its writes and bookkeeping were committed
            # at drain time; only a pending eager write-back remains
            inst = args[0]
            if self._compiled.writeback_flags[inst.instance_id]:
                self._drain_writeback(inst, args[2])
            return
        self._res_dispatched[args[1].resource_id].popleft()
        self._complete(*args)

    def _issue_transfer(self, op, *, on_complete=None) -> None:
        self._wires += 1
        super()._issue_transfer(op, on_complete=on_complete)

    def _transfer_done(self, xfer) -> None:
        self._wires -= 1
        super()._transfer_done(xfer)
        if self._wires == 0 and not self._drained:
            self._drain_retry = True
            self._maybe_drain()

    def _mark_done(self, inst) -> None:
        if inst.is_barrier:
            self._barriers_left -= 1
            super()._mark_done(inst)
            # the last barrier's wave has now been pumped; for transfer-free
            # tails (Only-CPU loops) no wire transition will ever re-arm
            if not self._barriers_left and not self._drained and not self._wires:
                self._drain_retry = True
                self._maybe_drain()
        else:
            self._undone -= 1
            super()._mark_done(inst)

    # -- the terminal drain ----------------------------------------------

    def _maybe_drain(self) -> None:
        if (
            self._drained
            or not self._drain_enabled
            or not self._drain_retry
            or self._wires
            or self._pending_writebacks
            or self._barriers_left
            or self._undone < DRAIN_MIN_INSTANCES
        ):
            return
        if not self._try_drain():
            # re-armed on the next wire-empty transition; pointless to
            # rewalk the graph until the world has changed
            self._drain_retry = False

    def _try_drain(self) -> bool:
        if self.ready:
            return False
        compiled = self._compiled
        graph = self.graph
        done = self.done
        rids = compiled.resource_ids
        instances = graph.instances
        succs_sorted = compiled.succs_sorted
        cross_deps = compiled.cross_deps

        dispatched: set[int] = set()
        for dq in self._res_dispatched.values():
            for inst in dq:
                dispatched.add(inst.instance_id)

        # gate 1: every remaining (undispatched, not done) instance's
        # unmet dependences live on its own resource — each resource's
        # future is then an independent FIFO chain (the cross-resource
        # dependence set is static, so only those need the done check)
        remaining_ids: list[int] = []
        for inst in instances:
            i = inst.instance_id
            if i in done or i in dispatched:
                continue
            if rids[i] is None:
                return False
            remaining_ids.append(i)
            for dep in cross_deps[i]:
                if dep not in done:
                    return False

        # gate 2: per-resource Kahn walk in FIFO readiness order — the
        # exact order the engine would dispatch (completions release
        # successors in sorted id order onto the same resource's queue)
        indeg = {i: self.remaining[i] for i in remaining_ids}
        chains: dict[str, list] = {}
        chained = 0
        for rid, dq in self._res_dispatched.items():
            chain: list = []
            work = deque(dq)
            while work:
                inst = work.popleft()
                chain.append(inst)
                chained += 1
                for succ in succs_sorted[inst.instance_id]:
                    left = indeg.get(succ)
                    if left is None:
                        continue
                    left -= 1
                    indeg[succ] = left
                    if left == 0:
                        work.append(instances[succ])
            chains[rid] = chain
        if chained != len(remaining_ids) + len(dispatched):
            return False

        # gate 3: shadow directory walk — every remaining read must
        # already be resident (the engine would otherwise issue
        # transfers, which the chains cannot model); writes are applied
        # along the way so later chain links see earlier results
        memory = self.memory
        spaces = tuple(memory._spaces)
        host_id = self.platform.host.device_id
        shadow: dict[tuple, object] = {}
        shadow_get = shadow.get
        real = memory._valid

        space_of: dict[str, str] = {}
        for r in self.resources:
            space_of[r.resource_id] = (
                HOST_SPACE if r.device.device_id == host_id
                else r.device.device_id
            )

        wb_regions: list = []
        flags = self._compiled.writeback_flags
        region_rows = compiled.region_rows

        def shadow_entry(arr, sp):
            key = (arr, sp)
            entry = shadow_get(key)
            if entry is None:
                entry = shadow[key] = real[arr][sp].copy()
            return entry

        for rid, chain in chains.items():
            space = space_of[rid]
            others = tuple(sp for sp in spaces if sp != space)
            # per-array bound methods of this chain's shadow entries —
            # one dict hit per region instead of tuple-keyed lookups and
            # attribute walks on every chain link
            ops_of: dict = {}
            ops_get = ops_of.get
            for inst in chain:
                i = inst.instance_id
                check_reads = i not in dispatched
                for region, reads, writes in region_rows[i]:
                    arr = region.array
                    ops = ops_get(arr)
                    if ops is None:
                        entry = shadow_entry(arr, space)
                        ops = ops_of[arr] = (
                            entry.contains,
                            entry.add,
                            tuple(
                                shadow_entry(arr, sp).remove
                                for sp in others
                            ),
                        )
                    if check_reads and reads:
                        if not ops[0](region.start, region.end):
                            return False
                    if writes:
                        ops[1](region.start, region.end)
                        for remove in ops[2]:
                            remove(region.start, region.end)
                        if flags[i]:
                            wb_regions.append(region)

        # gate 4: replayed write-backs must commute with the up-front
        # write commit — their written regions must be pairwise disjoint
        if len(wb_regions) > 1:
            for i, a in enumerate(wb_regions):
                for b in wb_regions[i + 1:]:
                    if a.overlaps(b):
                        return False

        # -- commit: the engine provably produces these chains ------------
        # a resource with nothing running cannot anchor a chain (every
        # remaining instance traces back to a dispatched seed); an empty
        # queue with a non-empty chain means the walk above went wrong
        sim = self.sim
        now = sim.now
        t0s: list[float] = []
        rows: list[array] = []
        order: list[str] = []
        durations = compiled.durations
        kernel_names = compiled.kernel_names
        los = compiled.los
        his = compiled.his
        sizes = compiled.sizes
        for rid, chain in chains.items():
            if not self._res_dispatched[rid]:
                if chain:
                    return False
                continue
            lane = self.compute_lanes[rid]
            if not len(lane.ends):
                return False  # staged head row unavailable; stay exact
            order.append(rid)
            # the running head's row is the lane's last staged append;
            # its end anchors the chain with the exact float the pending
            # completion event carries
            t0s.append(lane.ends[-1])
            rows.append(
                array("d", [durations[inst.instance_id]
                            for inst in chain[1:]])
            )

        bounds = _vec.chain_bounds(t0s, rows)

        t_max = now
        tails: list[tuple[float, int, _DrainTail]] = []
        seq = 0
        for rid, b in zip(order, bounds):
            chain = chains[rid]
            k = len(b) - 1
            head_end = float(b[0]) if k == 0 else float(b[k])
            if head_end > t_max:
                t_max = head_end
            space = space_of[rid]
            drained = chain[1:]
            if k:
                ids = [inst.instance_id for inst in drained]
                names = [kernel_names[j] for j in ids]
                lane = self.compute_lanes[rid]
                lane.extend_rows(
                    b[:-1],
                    b[1:],
                    str_args=names,
                    args_a=[los[j] for j in ids],
                    args_b=[his[j] for j in ids],
                    args_c=ids,
                    sizes=[sizes[j] for j in ids],
                    kernels=names,
                )
            for j, inst in enumerate(drained):
                if flags[inst.instance_id]:
                    tails.append(
                        (float(b[j + 1]), seq, _DrainTail(self, inst, space))
                    )
                    seq += 1
            # the running head completes through its own pending event
            # (see _complete_compute); everything queued behind it is now
            # accounted for by the bulk rows above
            self.sim_resources[rid]._queue.clear()

        # apply the shadow directory: all drained writes land at once
        for (arr, space), entry in shadow.items():
            real[arr][space] = entry

        done.update(range(len(instances)))
        self._undone = 0
        self._drained = True

        for end, _, tail in sorted(tails, key=lambda t: (t[0], t[1])):
            sim.at(end, tail, priority=PRIORITY_COMPLETION)
        # anchor the clock so the final flush starts when the last chain
        # ends, exactly as the event loop would have left it
        if t_max > now:
            sim.at(t_max, _noop, priority=PRIORITY_COMPLETION)
        return True

    def _drain_writeback(self, inst, space) -> None:
        # replica of _Run._complete's eager write-back block, fired at
        # the drained instance's computed end time
        for region, mode in self._regions(inst):
            if mode.writes:
                for op in self.memory.writeback(region, space):
                    self._pending_writebacks += 1
                    self._issue_transfer(
                        op, on_complete=self._writeback_done
                    )
