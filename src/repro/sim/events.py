"""Simulation events.

Events are ordered by ``(time, priority, seq)``: ties in virtual time break
first on an explicit priority (lower runs first) and then on insertion order,
which makes simulations fully deterministic — a property the test suite
relies on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True, slots=True)
class Event:
    """One scheduled callback in virtual time.

    Attributes
    ----------
    time:
        Virtual time (seconds) at which the event fires.
    priority:
        Tie-breaker for simultaneous events; lower fires first.  Completion
        events use a lower priority than scheduling ticks so that resources
        free up before the scheduler observes them.
    seq:
        Monotonic insertion index; makes ordering total and deterministic.
    callback:
        Zero-argument callable invoked when the event fires.  Cancelled
        events keep their heap slot but do nothing.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: notification hook set by the owning simulator so it can keep a live
    #: event count and compact the heap (see ``Simulator.pending``)
    on_cancel: Callable[[], Any] | None = field(default=None, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when the event fires."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()
