"""Unit constants and conversion helpers.

The simulator keeps all quantities in SI base units internally:

* time in **seconds**
* data sizes in **bytes**
* rates in **bytes/second** and **FLOP/second**

The paper (and our reports) quote milliseconds, GB, GB/s and GFLOPS, so this
module centralizes the conversions to keep magic numbers out of the models.
"""

from __future__ import annotations

# -- scale factors ----------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9

#: bytes in one kibibyte / mebibyte / gibibyte (binary, used for capacities)
KIB = 1024
MIB = 1024**2
GIB = 1024**3

#: single-precision float size in bytes (the paper's kernels are SP)
FLOAT32_BYTES = 4
#: double-precision float size in bytes
FLOAT64_BYTES = 8

#: CUDA warp size; Glinda rounds the GPU partition up to a warp multiple
WARP_SIZE = 32


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / KILO


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * KILO


def gb_to_bytes(gigabytes: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return gigabytes * GIGA


def bytes_to_gb(n_bytes: float) -> float:
    """Convert bytes to decimal gigabytes."""
    return n_bytes / GIGA


def gbs_to_bytes_per_s(gb_per_s: float) -> float:
    """Convert GB/s to bytes/s."""
    return gb_per_s * GIGA


def gflops_to_flops(gflops: float) -> float:
    """Convert GFLOP/s to FLOP/s."""
    return gflops * GIGA


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``.

    ``round_up(0, m) == 0``; ``multiple`` must be positive.
    """
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    if value <= 0:
        return 0
    return ((value + multiple - 1) // multiple) * multiple
