"""Run artifacts: the single result unit flowing through the pipeline.

One simulated run used to travel as a mutable ``ExecutionResult`` carrying
the *full* :class:`~repro.sim.trace.ExecutionTrace`, which every consumer
(figure tables, speedup rows, validation checks, CSV export) re-scanned
for each derived number — and which ``run_sweep`` workers pickled
wholesale back to the parent.  This module replaces that with a two-level
bundle:

* :class:`TraceSummary` — every number the reporting layers derive from a
  trace (makespan, per-resource busy times, per-direction transfer times,
  per-kernel split ratios, element/instance counts), computed **once**
  from the columnar :class:`~repro.sim.tracestore.TraceStore` in
  group-index order.  The accumulation order matches the old filtered
  record scans exactly, so every figure/table number derived from a
  summary is bit-identical to the pre-refactor path (enforced by
  ``tests/integration/test_artifact_differential.py``).
* :class:`RunArtifact` — a frozen, cheaply-picklable bundle of the
  summary, the strategy's :class:`~repro.partition.base.StrategyDecision`,
  and the run's cache hit/miss deltas.  The raw trace rides along only
  when the run was requested with ``detail="full"``; summarized artifacts
  (the ``run_sweep`` worker default) are orders of magnitude smaller on
  the wire.

``RunArtifact`` exposes the full historical ``ExecutionResult`` API
(``makespan_ms``, ``gpu_fraction``, ``ratio_by_kernel()``, ...), so it is
a drop-in replacement; ``repro.runtime.executor.ExecutionResult`` is kept
as a compatibility alias.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.sim.trace import ExecutionTrace
from repro.sim.tracestore import TraceStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.partition.base import StrategyDecision

#: valid values of the ``detail`` knob
DETAIL_LEVELS = ("summary", "full")


def check_detail(detail: str) -> str:
    """Validate a ``detail`` argument; returns it for chaining."""
    if detail not in DETAIL_LEVELS:
        raise ValueError(
            f"detail must be one of {DETAIL_LEVELS}, got {detail!r}"
        )
    return detail


@dataclass(frozen=True)
class TraceSummary:
    """Every reported aggregate of one trace, computed once.

    All float aggregates accumulate in the store's insertion order per
    group — the same order the old per-query record scans used — so the
    values are bit-identical to querying the raw trace.
    """

    #: latest end time across all records (trace-only; the artifact's
    #: ``makespan_s`` is additionally bounded by the simulator clock)
    trace_makespan_s: float
    #: number of trace records the summary condenses
    record_count: int
    #: kernel indices executed per device kind ("cpu"/"gpu")
    elements_by_device: dict[str, int]
    #: compute task instances per device kind
    instances_by_device: dict[str, int]
    #: kernel name -> device kind -> indices (per-kernel split ratios)
    ratio_by_kernel: dict[str, dict[str, int]]
    #: link-busy seconds per transfer direction ("h2d"/"d2h")
    transfer_time_s: dict[str, float]
    #: resource id -> category -> occupied seconds
    busy_by_resource: dict[str, dict[str, float]]

    @classmethod
    def from_store(cls, store: TraceStore) -> "TraceSummary":
        return cls(
            trace_makespan_s=store.makespan(),
            record_count=len(store),
            elements_by_device=store.elements_by_device(),
            instances_by_device=store.instance_count_by_device(),
            ratio_by_kernel=store.ratio_by_kernel(),
            transfer_time_s=store.transfer_time_by_direction(),
            busy_by_resource=store.busy_by_resource(),
        )

    def busy_time(self, resource_id: str, *, category: str | None = None) -> float:
        """Occupied seconds on a resource (sum over categories or one)."""
        per_cat = self.busy_by_resource.get(resource_id, {})
        if category is not None:
            return per_cat.get(category, 0.0)
        return sum(per_cat.values())


@dataclass(frozen=True)
class RunArtifact:
    """Outcome of one simulated run (frozen, cheaply picklable).

    This is the unit every pipeline layer exchanges: the executor builds
    it, strategies attach their decision and cache deltas, sweep workers
    ship it back summarized, and the reporting layers read only the
    summary.  The raw trace is present only under ``detail="full"``.
    """

    makespan_s: float
    scheduler_name: str
    instance_count: int
    summary: TraceSummary
    #: transferred bytes per direction ("h2d"/"d2h")
    transfer_bytes: dict[str, int] = field(default_factory=dict)
    #: what the producing strategy decided (None for raw engine runs)
    decision: "StrategyDecision | None" = None
    #: per-run memo-store deltas: store name -> {"hits": int, "misses": int}
    cache_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: "summary" (trace dropped) or "full" (trace attached)
    detail: str = "full"
    #: the raw trace; only present under ``detail="full"``
    trace: ExecutionTrace | None = field(default=None, compare=False)

    # -- compatibility facade (the historical ExecutionResult API) -------

    @property
    def makespan_ms(self) -> float:
        return self.makespan_s * 1e3

    @property
    def elements_by_device(self) -> dict[str, int]:
        """Kernel indices executed per device kind ("cpu"/"gpu")."""
        return self.summary.elements_by_device

    @property
    def instances_by_device(self) -> dict[str, int]:
        """Task instances per device kind."""
        return self.summary.instances_by_device

    @property
    def transfer_time_s(self) -> dict[str, float]:
        """Seconds the link channels were occupied, per direction."""
        return self.summary.transfer_time_s

    @property
    def total_transfer_time_s(self) -> float:
        return sum(self.transfer_time_s.values())

    def device_fraction(self, kind: str) -> float:
        """Fraction of kernel indices executed on ``kind`` ("gpu"/"cpu")."""
        total = sum(self.elements_by_device.values())
        if total == 0:
            return 0.0
        return self.elements_by_device.get(kind, 0) / total

    @property
    def gpu_fraction(self) -> float:
        return self.device_fraction("gpu")

    @property
    def cpu_fraction(self) -> float:
        return self.device_fraction("cpu")

    @property
    def accelerator_fraction(self) -> float:
        """Fraction executed on any non-CPU device (GPU, Phi, ...)."""
        total = sum(self.elements_by_device.values())
        if total == 0:
            return 0.0
        return 1.0 - self.elements_by_device.get("cpu", 0) / total

    def ratio_by_kernel(self) -> dict[str, dict[str, int]]:
        """Kernel name -> device kind -> indices (per-kernel split ratios).

        Returns a fresh copy (the historical API returned a new dict per
        call, and callers are free to mutate it).
        """
        return {k: dict(v) for k, v in self.summary.ratio_by_kernel.items()}

    @property
    def strategy_name(self) -> str | None:
        """Canonical name of the producing strategy (None for raw runs)."""
        return self.decision.strategy if self.decision is not None else None

    # -- detail management -----------------------------------------------

    def require_trace(self) -> ExecutionTrace:
        """The raw trace; raises when the run was summarized."""
        if self.trace is None:
            raise ValueError(
                "this RunArtifact was produced with detail='summary'; "
                "re-run with detail='full' to keep the raw trace"
            )
        return self.trace

    def summarized(self) -> "RunArtifact":
        """A copy with the raw trace dropped (``detail="summary"``)."""
        if self.trace is None and self.detail == "summary":
            return self
        return replace(self, trace=None, detail="summary")

    def with_context(
        self,
        *,
        decision: "StrategyDecision | None" = None,
        cache_stats: dict[str, dict[str, Any]] | None = None,
    ) -> "RunArtifact":
        """A copy with strategy decision and/or cache deltas attached."""
        out = self
        if decision is not None:
            out = replace(out, decision=decision)
        if cache_stats is not None:
            out = replace(out, cache_stats=cache_stats)
        return out


def artifact_nbytes(artifact: RunArtifact) -> int:
    """Pickled size of an artifact — the sweep's on-the-wire unit cost."""
    return len(pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL))
