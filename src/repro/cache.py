"""Probe/plan memoization: compute each sweep-invariant result once.

Every experiment sweep re-runs the same Glinda probes and split
predictions at every sweep point: the simulated platform is deterministic,
so a probe of the same kernel on the same device at the same size always
times the same.  This module provides small keyed memo stores —
*fingerprint* keyed, so a cache entry can never survive a change to the
platform, the kernel cost model, or the model parameters — used by

* :mod:`repro.partition.profiling` (throughput probes, kernel profiles,
  DP-Perf profile-table seeding),
* :mod:`repro.partition.glinda` (split predictions),
* :mod:`repro.core.tournament` (measured-ranking match results, keyed by
  platform fingerprint + scenario + strategy, so ``repro rank`` replays
  a platform's round-robin for free once it has been played).

Hit/miss counters are kept per store and surfaced
:class:`~repro.runtime.executor.ExecutionResult`-style via
:func:`cache_stats` / :meth:`MemoCache.stats`; strategies snapshot them
into their :class:`~repro.partition.base.StrategyDecision` notes and
``benchmarks/bench_pipeline_perf.py`` records them in
``BENCH_pipeline.json``.  Caching is on by default; set the environment
variable ``REPRO_CACHE=0`` (or call :func:`configure`) to disable it, e.g.
when ablating cache behaviour.  Keys, invalidation rules, and the
worker-process caveat are documented in ``docs/performance.md``.

Stores can also be persisted across CLI invocations:
:func:`save_snapshot`/:func:`load_snapshot` write/read a version-stamped,
fingerprint-keyed bundle, and ``python -m repro ... --cache-dir DIR``
warm-starts repeated runs from it (stale or incompatible snapshots are
ignored, never half-loaded).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Hashable

__all__ = [
    "CacheStats",
    "MemoCache",
    "SNAPSHOT_VERSION",
    "cache_stats",
    "clear_all",
    "configure",
    "counters",
    "device_fingerprint",
    "get_cache",
    "kernel_fingerprint",
    "load_snapshot",
    "platform_fingerprint",
    "preload_snapshot",
    "save_snapshot",
    "snapshot_stores",
    "stats_delta",
]


@dataclass
class CacheStats:
    """Hit/miss counters of one memo store."""

    name: str
    hits: int = 0
    misses: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "hit_rate": self.hit_rate,
        }


def _default_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") not in ("0", "false", "off")


class MemoCache:
    """A keyed memo store with hit/miss accounting.

    Keys must be hashable; values are returned by reference, so only
    immutable results (or results the caller copies) belong here.
    ``max_entries`` bounds memory: when full, the store stops admitting
    new entries (sweeps revisit a small working set, so eviction churn
    would cost more than it saves).
    """

    def __init__(self, name: str, *, max_entries: int = 65536) -> None:
        self.name = name
        self.max_entries = max_entries
        self.enabled = _default_enabled()
        self._store: dict[Hashable, Any] = {}
        self._hits = 0
        self._misses = 0

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        if not self.enabled:
            return compute()
        try:
            value = self._store[key]
        except KeyError:
            self._misses += 1
            value = compute()
            if len(self._store) < self.max_entries:
                self._store[key] = value
            return value
        self._hits += 1
        return value

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._store.clear()
        self._hits = 0
        self._misses = 0

    def preload(self, entries: dict[Hashable, Any]) -> int:
        """Install entries without touching the hit/miss counters.

        Used to ship a parent process's warm store into sweep workers:
        preloaded entries serve later lookups as ordinary hits, but the
        preload itself is bookkeeping, not cache traffic.  Respects
        ``max_entries``; returns the number of entries installed.
        """
        installed = 0
        store = self._store
        for key, value in entries.items():
            if key in store:
                continue
            if len(store) >= self.max_entries:
                break
            store[key] = value
            installed += 1
        return installed

    def entries(self) -> dict[Hashable, Any]:
        """Shallow copy of the stored entries (for snapshotting)."""
        return dict(self._store)

    def stats(self) -> CacheStats:
        return CacheStats(
            name=self.name,
            hits=self._hits,
            misses=self._misses,
            size=len(self._store),
        )

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"MemoCache({self.name!r}, hits={s.hits}, misses={s.misses}, "
            f"size={s.size})"
        )


#: the process-wide named stores (one per cached computation family)
_CACHES: dict[str, MemoCache] = {}


def get_cache(name: str) -> MemoCache:
    """The process-wide memo store ``name`` (created on first use)."""
    cache = _CACHES.get(name)
    if cache is None:
        cache = _CACHES[name] = MemoCache(name)
    return cache


def cache_stats() -> dict[str, CacheStats]:
    """Snapshot of every store's counters, keyed by store name."""
    return {name: cache.stats() for name, cache in sorted(_CACHES.items())}


def clear_all() -> None:
    """Clear every store (tests and ablations)."""
    for cache in _CACHES.values():
        cache.clear()


def configure(*, enabled: bool) -> None:
    """Enable or disable all stores (present and future)."""
    os.environ["REPRO_CACHE"] = "1" if enabled else "0"
    for cache in _CACHES.values():
        cache.enabled = enabled


def counters() -> dict[str, tuple[int, int]]:
    """Cheap counter snapshot: store name -> (hits, misses).

    Pair with :func:`stats_delta` to attribute cache traffic to one run:
    take the counters before, run, and diff afterwards.
    """
    return {
        name: (cache._hits, cache._misses) for name, cache in _CACHES.items()
    }


def stats_delta(before: dict[str, tuple[int, int]]) -> dict[str, dict[str, Any]]:
    """Per-store hit/miss deltas since a :func:`counters` snapshot.

    Only stores with traffic in the window appear; the result is the
    JSON-ready shape :class:`~repro.artifact.RunArtifact` carries.
    """
    out: dict[str, dict[str, Any]] = {}
    for name, cache in sorted(_CACHES.items()):
        hits0, misses0 = before.get(name, (0, 0))
        hits = cache._hits - hits0
        misses = cache._misses - misses0
        if hits or misses:
            lookups = hits + misses
            out[name] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
            }
    return out


# -- cross-process snapshots -------------------------------------------------
#
# ``run_sweep`` workers are separate processes, so they start with cold
# stores and re-run every probe the parent already has.  A *snapshot* is a
# picklable {store name -> {key -> value}} bundle the parent captures once
# and ships to each worker through the pool initializer; workers install
# it read-only-by-convention (their own additions never flow back).


def snapshot_stores() -> dict[str, dict[Hashable, Any]]:
    """Picklable copy of every store's entries (counters excluded)."""
    return {
        name: cache.entries()
        for name, cache in sorted(_CACHES.items())
        if len(cache)
    }


def preload_snapshot(snapshot: dict[str, dict[Hashable, Any]]) -> None:
    """Install a :func:`snapshot_stores` bundle into this process."""
    for name, entries in snapshot.items():
        get_cache(name).preload(entries)


# -- disk-backed snapshots ---------------------------------------------------
#
# The same {store name -> {key -> value}} bundle, persisted so a *second*
# ``python -m repro`` invocation warm-starts from the first one's probes
# and predictions (``--cache-dir`` on the CLI).  Every entry key already
# embeds the platform/kernel fingerprints, so a snapshot taken against a
# different cost model simply never hits — staleness needs no protocol.
# The version stamp guards the pickle layout itself: snapshots written by
# an incompatible build are ignored wholesale, never half-loaded.

#: bump when the snapshot payload layout (or any pickled value type) changes
SNAPSHOT_VERSION = 1

_SNAPSHOT_FORMAT = "repro-cache-snapshot"


def save_snapshot(path: str | os.PathLike) -> int:
    """Persist every store's entries to ``path``; returns the entry count.

    The write is atomic (temp file + rename), so a concurrent reader never
    observes a torn snapshot.
    """
    path = Path(path)
    stores = snapshot_stores()
    payload = {
        "format": _SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "stores": stores,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return sum(len(entries) for entries in stores.values())


def load_snapshot(path: str | os.PathLike) -> int:
    """Warm this process's stores from a :func:`save_snapshot` file.

    Returns the number of entries installed.  A missing, unreadable,
    corrupt, or version-incompatible snapshot is ignored (returns 0) —
    a stale cache must never break a run, only fail to speed it up.
    Installed entries do not touch the hit/miss counters.
    """
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, MemoryError):
        return 0
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _SNAPSHOT_FORMAT
        or payload.get("version") != SNAPSHOT_VERSION
        or not isinstance(payload.get("stores"), dict)
    ):
        return 0
    installed = 0
    for name, entries in payload["stores"].items():
        if not isinstance(name, str) or not isinstance(entries, dict):
            continue
        installed += get_cache(name).preload(entries)
    return installed


# -- fingerprints -----------------------------------------------------------
#
# A fingerprint digests everything a cached result depends on, so a cache
# key built from fingerprints is automatically invalidated by any change
# to the underlying model — there is no explicit invalidation protocol.


def _digest(*parts: object) -> str:
    h = hashlib.sha1()
    for part in parts:
        if isinstance(part, bytes):
            h.update(part)
        else:
            h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()[:16]


def device_fingerprint(device) -> str:
    """Digest of one device's spec and cost model (timing inputs)."""
    return _digest(device.device_id, device.spec, device.cost_model)


def platform_fingerprint(platform) -> str:
    """Digest of a whole platform: devices plus host links."""
    return _digest(
        tuple(device_fingerprint(d) for d in platform.devices),
        tuple(sorted(
            (dev_id, link) for dev_id, link in platform.links.items()
        )),
    )


def kernel_fingerprint(kernel) -> str:
    """Digest of a kernel's cost model and access shapes.

    The functional body (``impl``/``params``) is excluded — it never
    affects simulated timing.  PREFIX extents and imbalanced work weights
    do affect probe sizes and work units, so their raw bytes are folded in.
    """
    access_parts = []
    for acc in kernel.accesses:
        access_parts.append((
            acc.array.name,
            acc.array.n_elems,
            acc.array.elem_bytes,
            acc.mode.value,
            acc.pattern.value,
            acc.elems_per_index,
            acc.halo,
            None if acc.prefix is None else acc.prefix.tobytes(),
        ))
    work = None if kernel.work_prefix is None else kernel.work_prefix.tobytes()
    return _digest(kernel.name, kernel.cost, tuple(access_parts), work)
