"""Platform topology: host + accelerators + links, and the resource view.

The runtime schedules work onto *compute resources* (OmpSs terminology): each
CPU core backed by an SMP thread is one resource, and each accelerator is one
resource.  :class:`Platform` owns the devices and exposes that flattened
resource list, plus the link lookup needed to price host<->device transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlatformError
from repro.platform.device import Device, DeviceKind
from repro.platform.interconnect import Link

#: Resource id of the host memory space (not a compute resource).
HOST_SPACE = "host"


@dataclass(frozen=True)
class ComputeResource:
    """One schedulable execution context.

    ``resource_id`` is globally unique on the platform (``"cpu:3"``,
    ``"gpu0"``).  ``share`` is the fraction of the owning device's peak
    rates this resource provides: ``1 / cores`` for a CPU core, ``1.0`` for
    an accelerator scheduled as a whole.
    """

    resource_id: str
    device: Device
    share: float

    @property
    def kind(self) -> DeviceKind:
        return self.device.kind

    @property
    def is_accelerator(self) -> bool:
        return self.device.kind is not DeviceKind.CPU

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComputeResource({self.resource_id!r})"


@dataclass
class Platform:
    """A heterogeneous platform: one host CPU plus zero or more accelerators.

    Parameters
    ----------
    host:
        The CPU device.  Its memory is the *host memory space*; ``taskwait``
        flushes all device data back to it.
    accelerators:
        Accelerator devices (GPUs in the paper), each with its own memory
        space connected to the host by a :class:`Link`.
    links:
        Mapping from accelerator ``device_id`` to the link connecting it to
        the host.  Every accelerator must have a link.
    """

    host: Device
    accelerators: list[Device] = field(default_factory=list)
    links: dict[str, Link] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.host.kind is not DeviceKind.CPU:
            raise PlatformError("platform host must be a CPU device")
        seen = {self.host.device_id}
        for acc in self.accelerators:
            if acc.kind is DeviceKind.CPU:
                raise PlatformError(
                    f"accelerator {acc.device_id} must not be a CPU device"
                )
            if acc.device_id in seen:
                raise PlatformError(f"duplicate device id {acc.device_id!r}")
            seen.add(acc.device_id)
            if acc.device_id not in self.links:
                raise PlatformError(
                    f"accelerator {acc.device_id} has no host link configured"
                )
        for link_dev in self.links:
            if link_dev not in seen or link_dev == self.host.device_id:
                raise PlatformError(f"link references unknown device {link_dev!r}")

    # -- device queries ------------------------------------------------

    @property
    def devices(self) -> list[Device]:
        """All devices, host first."""
        return [self.host, *self.accelerators]

    def device(self, device_id: str) -> Device:
        """Look up a device by id; raises :class:`PlatformError` if absent."""
        for dev in self.devices:
            if dev.device_id == device_id:
                return dev
        raise PlatformError(f"unknown device {device_id!r}")

    def link_for(self, device_id: str) -> Link:
        """The host link of accelerator ``device_id``."""
        try:
            return self.links[device_id]
        except KeyError:
            raise PlatformError(
                f"device {device_id!r} has no host link (is it the host?)"
            ) from None

    @property
    def gpu(self) -> Device:
        """Convenience accessor for single-accelerator platforms."""
        if len(self.accelerators) != 1:
            raise PlatformError(
                f"platform has {len(self.accelerators)} accelerators; "
                "use .accelerators explicitly"
            )
        return self.accelerators[0]

    # -- resource view ---------------------------------------------------

    def compute_resources(self, *, cpu_threads: int | None = None) -> list[ComputeResource]:
        """Flatten the platform into schedulable resources.

        Parameters
        ----------
        cpu_threads:
            Number of SMP threads to create on the host (the paper's ``m``).
            Defaults to the host core count.  Each thread is modelled as an
            equal ``1/cpu_threads`` share of the CPU's aggregate rates,
            which matches the paper's setup of ``m`` equal task instances.
        """
        m = self.host.spec.cores if cpu_threads is None else cpu_threads
        if m <= 0:
            raise PlatformError(f"cpu_threads must be positive, got {m}")
        resources = [
            ComputeResource(f"{self.host.device_id}:{i}", self.host, 1.0 / m)
            for i in range(m)
        ]
        resources.extend(
            ComputeResource(acc.device_id, acc, 1.0) for acc in self.accelerators
        )
        return resources

    def memory_spaces(self) -> list[str]:
        """Identifiers of all memory spaces (host space first)."""
        return [HOST_SPACE, *(acc.device_id for acc in self.accelerators)]

    def describe(self) -> str:
        """Multi-line human-readable summary (cf. paper Table III)."""
        lines = [f"Platform: {self.host.name} + "
                 f"{', '.join(a.name for a in self.accelerators) or '(no accelerator)'}"]
        for dev in self.devices:
            s = dev.spec
            lines.append(
                f"  {dev.device_id:<6} {s.name:<24} {s.kind.value:<4} "
                f"cores={s.cores:<5} {s.frequency_ghz:g} GHz  "
                f"SP={s.peak_gflops_sp:g} GFLOPS  DP={s.peak_gflops_dp:g} GFLOPS  "
                f"BW={s.mem_bandwidth_gbs:g} GB/s  mem={s.mem_capacity_gb:g} GB"
            )
        for dev_id, link in self.links.items():
            lines.append(
                f"  link {dev_id}: {link.name} {link.bandwidth_gbs:g} GB/s/dir, "
                f"latency {link.latency_s * 1e6:g} us"
            )
        return "\n".join(lines)
