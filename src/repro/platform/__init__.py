"""Heterogeneous platform model.

This package substitutes the paper's physical testbed (Intel Xeon E5-2620 +
Nvidia Tesla K20m, Table III) with an analytic model:

* :mod:`repro.platform.device` — device specifications and the roofline-style
  per-kernel execution-time model,
* :mod:`repro.platform.interconnect` — the PCIe-like host<->device link,
* :mod:`repro.platform.topology` — the :class:`Platform` (host + accelerators
  + links) and its compute-resource view,
* :mod:`repro.platform.presets` — ready-made platforms, including the exact
  configuration of the paper's Table III.
"""

from repro.platform.device import (
    CostModel,
    Device,
    DeviceKind,
    DeviceSpec,
    RooflineCostModel,
)
from repro.platform.interconnect import Link, TransferDirection
from repro.platform.topology import ComputeResource, Platform
from repro.platform.presets import (
    balanced_platform,
    dual_gpu_platform,
    fusion_platform,
    phi_platform,
    shen_icpp15_platform,
)

__all__ = [
    "CostModel",
    "Device",
    "DeviceKind",
    "DeviceSpec",
    "RooflineCostModel",
    "Link",
    "TransferDirection",
    "ComputeResource",
    "Platform",
    "balanced_platform",
    "dual_gpu_platform",
    "fusion_platform",
    "phi_platform",
    "shen_icpp15_platform",
]
