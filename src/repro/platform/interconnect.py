"""Host <-> device interconnect (PCIe-like link) model.

The paper's platform moves data between CPU (host) memory and GPU (device)
memory over PCIe.  Transfer cost is the dominant force behind several of the
paper's findings (BlackScholes' 41/59 split, HotSpot's CPU win, STREAM's
88%-transfer Only-GPU profile), so the link is a first-class simulated
resource: transfers serialize per direction and pay a per-message latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gbs_to_bytes_per_s


class TransferDirection(enum.Enum):
    """Direction of a host<->device transfer."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"

    @property
    def short(self) -> str:
        return self.value


@dataclass(frozen=True)
class Link:
    """A bidirectional host<->device link with per-direction channels.

    Parameters
    ----------
    name:
        Link label, e.g. ``"pcie2-x16"``.
    bandwidth_gbs:
        Effective (not theoretical) per-direction bandwidth in GB/s.  The
        paper's K20m sits on PCIe 2.0 x16; ~6 GB/s effective is typical.
    latency_s:
        Per-message setup latency (driver call + DMA setup).  Charged once
        per transfer, which is why many small transfers (dynamic
        partitioning, SP-Varied's per-kernel flushes) cost more than one
        large transfer of the same volume.
    duplex:
        If ``True`` the two directions are independent channels; if
        ``False`` they share one channel (modelled by the simulator mapping
        both directions to the same resource).
    """

    name: str
    bandwidth_gbs: float
    latency_s: float = 10e-6
    duplex: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.latency_s < 0:
            raise ConfigurationError(f"{self.name}: latency must be >= 0")

    @property
    def bandwidth(self) -> float:
        """Per-direction bandwidth in bytes/s."""
        return gbs_to_bytes_per_s(self.bandwidth_gbs)

    def transfer_time(self, n_bytes: float) -> float:
        """Time in seconds to move ``n_bytes`` in one direction.

        A zero-byte transfer costs nothing (no message is issued).
        """
        if n_bytes < 0:
            raise ConfigurationError("transfer size must be >= 0")
        if n_bytes == 0:
            return 0.0
        return self.latency_s + n_bytes / self.bandwidth
