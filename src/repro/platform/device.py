"""Device specifications and execution-time cost models.

A :class:`Device` is one processor of the heterogeneous platform (the
multi-core CPU or the GPU).  Timing follows a roofline model: a kernel of
``s`` elements is limited either by arithmetic throughput or by memory
bandwidth, whichever bound is tighter, plus a fixed per-launch overhead:

``t = max(flops / (peak_flops * eff_c),  bytes / (mem_bw * eff_m)) + launch``

The per-kernel efficiency factors ``eff_c``/``eff_m`` come from the kernel's
:class:`~repro.runtime.kernels.KernelCostModel` and encode how well each
kernel maps to each device kind (e.g. a PCIe-bound stencil runs at a lower
effective rate on the GPU than dense GEMM does).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import gflops_to_flops, gbs_to_bytes_per_s, gb_to_bytes


class DeviceKind(enum.Enum):
    """Processor family; kernels specialize their efficiency per kind."""

    CPU = "cpu"
    GPU = "gpu"
    ACCELERATOR = "accelerator"


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of one processor (cf. paper Table III).

    Parameters
    ----------
    name:
        Human-readable device name (e.g. ``"Intel Xeon E5-2620"``).
    kind:
        :class:`DeviceKind` of the processor.
    cores:
        Number of hardware execution contexts usable by the runtime.  For
        the CPU this is the number of SMP threads (12 with Hyper-Threading
        on the paper's Xeon); the GPU counts as a single schedulable
        resource whose internal parallelism is folded into its peak rates.
    frequency_ghz:
        Core clock in GHz (informational; timing uses peak rates).
    peak_gflops_sp / peak_gflops_dp:
        Peak single/double-precision arithmetic throughput, GFLOP/s,
        aggregated over the whole device.
    mem_bandwidth_gbs:
        Peak device-memory bandwidth in GB/s.
    mem_capacity_gb:
        Device memory capacity in (decimal) GB.
    launch_overhead_s:
        Fixed cost of launching one task instance on this device (kernel
        launch + driver/runtime bookkeeping).  This is the per-chunk
        overhead that makes fine-grained dynamic partitioning pay a price
        that static partitioning avoids.
    """

    name: str
    kind: DeviceKind
    cores: int
    frequency_ghz: float
    peak_gflops_sp: float
    peak_gflops_dp: float
    mem_bandwidth_gbs: float
    mem_capacity_gb: float
    launch_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"{self.name}: cores must be positive")
        for attr in ("peak_gflops_sp", "peak_gflops_dp",
                     "mem_bandwidth_gbs", "mem_capacity_gb"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{self.name}: {attr} must be positive")
        if self.launch_overhead_s < 0:
            raise ConfigurationError(f"{self.name}: launch overhead must be >= 0")

    @property
    def peak_flops_sp(self) -> float:
        """Peak SP throughput in FLOP/s."""
        return gflops_to_flops(self.peak_gflops_sp)

    @property
    def peak_flops_dp(self) -> float:
        """Peak DP throughput in FLOP/s."""
        return gflops_to_flops(self.peak_gflops_dp)

    @property
    def mem_bandwidth(self) -> float:
        """Peak memory bandwidth in bytes/s."""
        return gbs_to_bytes_per_s(self.mem_bandwidth_gbs)

    @property
    def mem_capacity_bytes(self) -> float:
        """Device memory capacity in bytes."""
        return gb_to_bytes(self.mem_capacity_gb)


class CostModel:
    """Interface for computing a kernel chunk's execution time on a device.

    Concrete cost models receive *kernel work descriptors* — the FLOP count
    and the bytes touched in device memory — rather than kernel objects, so
    the platform layer stays independent of the runtime layer.
    """

    def compute_time(
        self,
        spec: DeviceSpec,
        *,
        flops: float,
        mem_bytes: float,
        compute_eff: float = 1.0,
        mem_eff: float = 1.0,
        double_precision: bool = False,
    ) -> float:
        """Return execution time in seconds for one task instance."""
        raise NotImplementedError


@dataclass(frozen=True)
class RooflineCostModel(CostModel):
    """Roofline execution-time model with per-launch overhead.

    ``include_launch_overhead`` can be disabled to model a *fused* view of
    several chunks launched as one (used by static partitioning where each
    device receives a single task instance per kernel).
    """

    include_launch_overhead: bool = True

    def compute_time(
        self,
        spec: DeviceSpec,
        *,
        flops: float,
        mem_bytes: float,
        compute_eff: float = 1.0,
        mem_eff: float = 1.0,
        double_precision: bool = False,
    ) -> float:
        if flops < 0 or mem_bytes < 0:
            raise ConfigurationError("flops and mem_bytes must be >= 0")
        if not (0 < compute_eff <= 1.0) or not (0 < mem_eff <= 1.0):
            raise ConfigurationError(
                f"efficiencies must be in (0, 1], got {compute_eff}, {mem_eff}"
            )
        peak = spec.peak_flops_dp if double_precision else spec.peak_flops_sp
        t_compute = flops / (peak * compute_eff) if flops else 0.0
        t_memory = mem_bytes / (spec.mem_bandwidth * mem_eff) if mem_bytes else 0.0
        t = max(t_compute, t_memory)
        if self.include_launch_overhead:
            t += spec.launch_overhead_s
        return t


@dataclass
class Device:
    """A schedulable processor instance on a platform.

    Combines the immutable :class:`DeviceSpec` with platform-level identity
    (a unique ``device_id``) and the cost model used for timing.
    """

    device_id: str
    spec: DeviceSpec
    cost_model: CostModel = field(default_factory=RooflineCostModel)

    @property
    def kind(self) -> DeviceKind:
        return self.spec.kind

    @property
    def name(self) -> str:
        return self.spec.name

    def kernel_time(
        self,
        *,
        flops: float,
        mem_bytes: float,
        compute_eff: float = 1.0,
        mem_eff: float = 1.0,
        double_precision: bool = False,
        include_launch: bool = True,
    ) -> float:
        """Execution time (seconds) of one task instance on this device.

        ``include_launch=False`` skips the per-launch overhead regardless of
        the cost model's default — static partitioning uses it to time the
        body of an already-launched task when fusing chunks.
        """
        t = self.cost_model.compute_time(
            self.spec,
            flops=flops,
            mem_bytes=mem_bytes,
            compute_eff=compute_eff,
            mem_eff=mem_eff,
            double_precision=double_precision,
        )
        if not include_launch and isinstance(self.cost_model, RooflineCostModel) \
                and self.cost_model.include_launch_overhead:
            t -= self.spec.launch_overhead_s
        return t

    def throughput(
        self,
        *,
        flops_per_elem: float,
        bytes_per_elem: float,
        compute_eff: float = 1.0,
        mem_eff: float = 1.0,
        double_precision: bool = False,
    ) -> float:
        """Sustained elements/second for a kernel with the given intensity.

        This is the quantity Glinda's profiling step estimates: the device's
        effective processing rate for a *specific* kernel, combining the
        compute and memory roofs.
        """
        t = self.kernel_time(
            flops=flops_per_elem,
            mem_bytes=bytes_per_elem,
            compute_eff=compute_eff,
            mem_eff=mem_eff,
            double_precision=double_precision,
            include_launch=False,
        )
        if t <= 0:
            raise ConfigurationError(
                "kernel with zero per-element work has unbounded throughput"
            )
        return 1.0 / t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.device_id!r}, {self.spec.name!r}, {self.kind.value})"
