"""Ready-made platform configurations.

:func:`shen_icpp15_platform` reproduces the paper's Table III testbed.  Peak
rates are taken verbatim from the table; the PCIe link bandwidth is not given
in the paper, so we use the effective rate typical of the K20m's PCIe 2.0 x16
slot (~6 GB/s per direction), which reproduces the paper's transfer-bound
behaviours (BlackScholes' 37.5x transfer/compute ratio, STREAM's 88% transfer
share on Only-GPU, HotSpot's CPU win).

The other presets exist for the "future work" exploration benchmarks: how the
strategy ranking shifts when the platform balance changes.
"""

from __future__ import annotations

from repro.platform.device import Device, DeviceKind, DeviceSpec
from repro.platform.interconnect import Link
from repro.platform.topology import Platform

#: Per-task-instance launch overhead observed for OmpSs SMP tasks (~5 us)
CPU_LAUNCH_OVERHEAD_S = 5e-6
#: OpenCL kernel launch + runtime bookkeeping on the GPU (~30 us)
GPU_LAUNCH_OVERHEAD_S = 30e-6

XEON_E5_2620 = DeviceSpec(
    name="Intel Xeon E5-2620",
    kind=DeviceKind.CPU,
    cores=12,  # 6 physical, 12 with Hyper-Threading (Table III)
    frequency_ghz=2.0,
    peak_gflops_sp=384.0,
    peak_gflops_dp=192.0,
    mem_bandwidth_gbs=42.6,
    mem_capacity_gb=64.0,
    launch_overhead_s=CPU_LAUNCH_OVERHEAD_S,
)

TESLA_K20M = DeviceSpec(
    name="Nvidia Tesla K20m",
    kind=DeviceKind.GPU,
    cores=2496,  # CUDA cores across 13 SMXs (Table III)
    frequency_ghz=0.705,
    peak_gflops_sp=3519.3,
    peak_gflops_dp=1173.1,
    mem_bandwidth_gbs=208.0,
    mem_capacity_gb=5.0,
    launch_overhead_s=GPU_LAUNCH_OVERHEAD_S,
)

PCIE2_X16 = Link(name="pcie2-x16", bandwidth_gbs=6.0, latency_s=10e-6)


def shen_icpp15_platform() -> Platform:
    """The paper's evaluation platform (Table III): Xeon E5-2620 + Tesla K20m."""
    return Platform(
        host=Device("cpu", XEON_E5_2620),
        accelerators=[Device("gpu0", TESLA_K20M)],
        links={"gpu0": PCIE2_X16},
    )


GTX_680 = DeviceSpec(
    name="Nvidia GTX 680",
    kind=DeviceKind.GPU,
    cores=1536,
    frequency_ghz=1.006,
    peak_gflops_sp=3090.4,
    peak_gflops_dp=128.8,
    mem_bandwidth_gbs=192.2,
    mem_capacity_gb=2.0,
    launch_overhead_s=GPU_LAUNCH_OVERHEAD_S,
)

PCIE3_X16 = Link(name="pcie3-x16", bandwidth_gbs=11.0, latency_s=8e-6)


def dual_gpu_platform() -> Platform:
    """A non-identical two-accelerator platform (Glinda's general case).

    The paper's Glinda approach "supports various platforms, with one or
    more accelerators, identical or non-identical"; this preset pairs the
    Table III machine with a consumer GTX 680 on a faster slot, so the
    two GPUs differ in throughput, DP capability, and link bandwidth.
    """
    return Platform(
        host=Device("cpu", XEON_E5_2620),
        accelerators=[Device("gpu0", TESLA_K20M), Device("gpu1", GTX_680)],
        links={"gpu0": PCIE2_X16, "gpu1": PCIE3_X16},
    )


def balanced_platform() -> Platform:
    """A platform where CPU and GPU are closely matched.

    Useful for probing partitioning behaviour near 50/50 splits, where
    rounding and scheduling-overhead effects are most visible.
    """
    cpu = DeviceSpec(
        name="balanced-cpu", kind=DeviceKind.CPU, cores=16,
        frequency_ghz=2.5, peak_gflops_sp=800.0, peak_gflops_dp=400.0,
        mem_bandwidth_gbs=80.0, mem_capacity_gb=128.0,
        launch_overhead_s=CPU_LAUNCH_OVERHEAD_S,
    )
    gpu = DeviceSpec(
        name="balanced-gpu", kind=DeviceKind.GPU, cores=1024,
        frequency_ghz=1.0, peak_gflops_sp=1000.0, peak_gflops_dp=500.0,
        mem_bandwidth_gbs=160.0, mem_capacity_gb=8.0,
        launch_overhead_s=GPU_LAUNCH_OVERHEAD_S,
    )
    return Platform(
        host=Device("cpu", cpu),
        accelerators=[Device("gpu0", gpu)],
        links={"gpu0": Link(name="pcie3-x16", bandwidth_gbs=12.0)},
    )


XEON_PHI_5110P = DeviceSpec(
    name="Intel Xeon Phi 5110P",
    kind=DeviceKind.ACCELERATOR,
    cores=60,
    frequency_ghz=1.053,
    peak_gflops_sp=2021.8,
    peak_gflops_dp=1010.9,
    mem_bandwidth_gbs=320.0,
    mem_capacity_gb=8.0,
    launch_overhead_s=GPU_LAUNCH_OVERHEAD_S * 2,  # offload runtime setup
)


def phi_platform() -> Platform:
    """Xeon CPU + Xeon Phi — the paper's other named accelerator (§I/§VII).

    The Phi sits on the same PCIe generation as the K20m but offers higher
    memory bandwidth and lower effective arithmetic throughput for naive
    offload code; the analyzer pipeline is accelerator-agnostic, so the
    same matchmaking applies unchanged.
    """
    return Platform(
        host=Device("cpu", XEON_E5_2620),
        accelerators=[Device("phi0", XEON_PHI_5110P)],
        links={"phi0": PCIE2_X16},
    )


def fusion_platform() -> Platform:
    """An APU-like platform with a very fast host<->device link.

    The paper's future work asks how rankings change with other
    accelerators; with near-free transfers the transfer-bound effects
    (HotSpot's CPU win, STREAM's CPU-heavy splits) should invert or vanish.
    """
    cpu = DeviceSpec(
        name="fusion-cpu", kind=DeviceKind.CPU, cores=8,
        frequency_ghz=3.0, peak_gflops_sp=400.0, peak_gflops_dp=200.0,
        mem_bandwidth_gbs=50.0, mem_capacity_gb=32.0,
        launch_overhead_s=CPU_LAUNCH_OVERHEAD_S,
    )
    gpu = DeviceSpec(
        name="fusion-gpu", kind=DeviceKind.GPU, cores=512,
        frequency_ghz=1.2, peak_gflops_sp=1600.0, peak_gflops_dp=400.0,
        mem_bandwidth_gbs=100.0, mem_capacity_gb=8.0,
        launch_overhead_s=GPU_LAUNCH_OVERHEAD_S / 3,
    )
    return Platform(
        host=Device("cpu", cpu),
        accelerators=[Device("gpu0", gpu)],
        links={"gpu0": Link(name="on-die", bandwidth_gbs=50.0, latency_s=1e-6)},
    )
