"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Applications, strategies, platform presets, experiment keys.
``platform [--preset P]``
    Describe a platform preset (default: the paper's Table III machine).
``analyze APP [--sync|--no-sync] [-n N] [--ranker table|measured]``
    Run the application analyzer and print the class/ranking report.
``rank [--scale F] [--compare] [--jobs N]``
    Play the strategy tournament on a platform preset and print the
    measured per-class rankings (``--compare``: against Table I).
``run APP [--strategy S] [--sync|--no-sync] [-n N] [-i I] [--gantt] ...``
    Execute one application under one strategy (default: the matchmade
    best) and print the outcome, optionally with a Gantt chart and trace
    statistics.
``experiment KEY [--scale F] [-o FILE.csv|.json]``
    Regenerate one paper table/figure and print (or export) its data.
``speedup [-o FILE]``
    Regenerate Figure 12.
``validate``
    Run the full shape validation (49 paper claims); exit 1 on failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.apps.registry import all_applications, get_application
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.export import (
    scenario_rows,
    speedup_rows,
    write_records,
)
from repro.bench.speedup import figure12, format_figure12
from repro.bench.tables import format_ratio_table, format_time_table
from repro.bench.validation import validate_platform
from repro.core.analyzer import analyze
from repro.core.matchmaker import match
from repro.core.ranking import resolve_ranker
from repro.errors import ConfigurationError, PartitioningError
from repro.core.report import format_analysis, format_match
from repro.partition import PlanConfig, all_strategy_info, get_strategy
from repro.runtime.executor import RuntimeConfig
from repro.sim.engine import DEFAULT_MAX_EVENTS
from repro.platform import (
    balanced_platform,
    dual_gpu_platform,
    fusion_platform,
    phi_platform,
    shen_icpp15_platform,
)
from repro.sim import analyze_trace, format_stats, render_gantt

PRESETS: dict[str, Callable] = {
    "shen": shen_icpp15_platform,
    "dual-gpu": dual_gpu_platform,
    "fusion": fusion_platform,
    "balanced": balanced_platform,
    "phi": phi_platform,
}


def _platform(args) -> "Platform":
    return PRESETS[args.preset]()


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="warm-start the probe/plan memo stores from DIR and save "
             "them back on exit, so repeated invocations skip probes "
             "already computed (stale snapshots are ignored)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="shen",
        help="platform preset (default: the paper's Table III machine)",
    )
    _add_cache_dir(parser)


def _add_ranker(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ranker", choices=["table", "measured"], default="table",
        help="ranking provider: the paper's Table I (default) or a "
             "tournament measured on the selected platform preset",
    )


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (1 = serial, 0 = all cores); "
             "results are identical regardless of N",
    )
    parser.add_argument(
        "--workers", action="append", default=None, metavar="HOST:PORT",
        help="shard the sweep over remote worker servers (repeat the "
             "flag or comma-separate; start one with `python -m "
             "repro.distrib.worker --listen HOST:PORT`); --jobs then "
             "sets each worker's intra-batch parallelism and results "
             "stay identical to a serial run",
    )
    parser.add_argument(
        "--fuse", type=int, default=None, nargs="?", const=0, metavar="B",
        help="with --jobs > 1, dispatch cells to pool workers in fused "
             "blocks of B (omit B to auto-size); amortizes per-cell "
             "dispatch cost when cells are cheap",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print completed/total cell counts to stderr as sweep "
             "results stream in (works with serial, --jobs, and "
             "--workers runs alike)",
    )


def _workers(args) -> list[str] | None:
    """Validated ``--workers`` endpoints (normalized strings) or None.

    Malformed values abort before any sweep work starts, with the
    offending value named — never a socket traceback mid-experiment.
    """
    if not getattr(args, "workers", None):
        return None
    from repro.distrib import format_endpoint, parse_endpoints

    return [format_endpoint(ep) for ep in parse_endpoints(args.workers)]


def cmd_list(args) -> int:
    print("applications:")
    for app in all_applications():
        print(f"  {app.name:<14} {app.paper_class:<8} {app.origin}")
    print("strategies:")
    for info in all_strategy_info():
        classes = ", ".join(
            c for c in ("SK-One", "SK-Loop", "MK-Seq", "MK-Loop", "MK-DAG")
            if c in info.applies_to
        )
        ranked = "" if info.ranked else "  (baseline, unranked)"
        print(f"  {info.name:<11} {info.family:<9} [{classes}]{ranked}")
    print("platform presets:")
    for name in sorted(PRESETS):
        print(f"  {name}")
    print("experiments:")
    for key, exp in EXPERIMENTS.items():
        print(f"  {key:<8} {exp.label()}")
    return 0


def cmd_platform(args) -> int:
    print(_platform(args).describe())
    return 0


def cmd_analyze(args) -> int:
    app = get_application(args.app)
    ranker = resolve_ranker(args.ranker, _platform(args))
    report = analyze(app, n=args.n, sync=args.sync, ranker=ranker)
    print(format_analysis(report))
    return 0


def cmd_rank(args) -> int:
    from repro.core.tournament import format_tournament, run_tournament

    platform = _platform(args)
    result = run_tournament(
        platform, scale=args.scale, jobs=args.jobs,
        workers=_workers(args), fuse=args.fuse,
    )
    if args.compare:
        from repro.bench.matchup import compare_to_table, format_matchup

        print(format_matchup(compare_to_table(result)))
    else:
        print(format_tournament(result))
    return 0


def cmd_run(args) -> int:
    platform = _platform(args)
    app = get_application(args.app)
    config = PlanConfig(cpu_threads=args.threads, task_count=args.tasks)
    if args.detail == "summary" and (args.stats or args.gantt):
        print("--stats/--gantt need the raw trace; drop --detail summary",
              file=sys.stderr)
        return 2
    runtime_config = None
    if args.max_events is not None or args.plan_eval:
        runtime_config = RuntimeConfig(
            cpu_threads=config.threads(platform),
            max_events=(
                args.max_events if args.max_events is not None
                else DEFAULT_MAX_EVENTS
            ),
            plan_eval=True if args.plan_eval else None,
        )
    profiler = None
    if args.profile is not None:
        # profile exactly the simulate call (serial, in-process), not
        # argument parsing or report rendering — hot-path work should
        # start from a clean .pstats of the run itself
        import cProfile

        profiler = cProfile.Profile()
    if args.strategy is None:
        if profiler is not None:
            profiler.enable()
        try:
            outcome = match(
                app, platform, n=args.n, iterations=args.iterations,
                sync=args.sync, config=config, runtime_config=runtime_config,
                detail=args.detail, ranker=args.ranker,
            )
        finally:
            if profiler is not None:
                profiler.disable()
        result = outcome.result
        print(format_match(outcome))
    else:
        sync = app.needs_sync if args.sync is None else args.sync
        program = app.program(args.n, iterations=args.iterations, sync=sync)
        try:
            strategy = get_strategy(args.strategy)
        except PartitioningError as exc:
            # typo'd --strategy gets the did-you-mean one-liner, no traceback
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if profiler is not None:
            profiler.enable()
        try:
            result = strategy.run(
                program, platform, config=config,
                runtime_config=runtime_config, detail=args.detail,
            )
        finally:
            if profiler is not None:
                profiler.disable()
        print(f"{app.name} under {strategy.name}: "
              f"{result.makespan_ms:.2f} ms "
              f"(GPU {result.gpu_fraction:.1%} / CPU {result.cpu_fraction:.1%})")
    if profiler is not None:
        profiler.dump_stats(args.profile)
        print(f"profile written to {args.profile}", file=sys.stderr)
    if args.stats:
        print()
        print(format_stats(analyze_trace(result.require_trace())))
    if args.gantt:
        print()
        print(render_gantt(result.require_trace(), width=args.gantt_width))
    return 0


def cmd_experiment(args) -> int:
    platform = _platform(args)
    results = run_experiment(
        args.key, platform, scale=args.scale, jobs=args.jobs,
        workers=_workers(args), fuse=args.fuse, progress=args.progress,
    )
    if args.key in ("fig6", "fig8", "fig10"):
        print(format_ratio_table(
            results, title=EXPERIMENTS[args.key].label(),
            per_kernel=args.key == "fig10",
        ))
    else:
        print(format_time_table(results, title=EXPERIMENTS[args.key].label()))
    if args.output:
        path = write_records(scenario_rows(results), args.output)
        print(f"\nwrote {path}")
    return 0


def cmd_speedup(args) -> int:
    platform = _platform(args)
    rows = figure12(platform, scale=args.scale)
    print(format_figure12(rows))
    if args.output:
        path = write_records(speedup_rows(rows), args.output)
        print(f"\nwrote {path}")
    return 0


def cmd_validate(args) -> int:
    report = validate_platform(_platform(args))
    print(report.summary())
    return 0 if report.ok else 1


def cmd_regenerate(args) -> int:
    """Dump every table/figure's data to a results directory."""
    from pathlib import Path

    platform = _platform(args)
    workers = _workers(args)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for key in sorted(EXPERIMENTS):
        results = run_experiment(
            key, platform, scale=args.scale, jobs=args.jobs, workers=workers,
            fuse=args.fuse, progress=args.progress,
        )
        path = write_records(scenario_rows(results), out / f"{key}.csv")
        written.append(path)
    rows = figure12(platform, scale=args.scale)
    written.append(write_records(speedup_rows(rows), out / "fig12.csv"))
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_characterize(args) -> int:
    from repro.apps.characterize import characterize, format_characterization
    from repro.apps.registry import all_applications

    platform = _platform(args)
    chars = []
    for app in all_applications():
        if app.name == "Cholesky":
            continue  # tile-granular; the table is per index-space kernel
        chars.append(characterize(app, platform))
    print(format_characterization(chars))
    return 0


def cmd_crossover(args) -> int:
    from repro.bench.crossover import (
        format_crossover,
        hotspot_bandwidth_crossover,
        stream_iteration_crossover,
    )

    platform = _platform(args)
    workers = _workers(args)
    if args.sweep == "stream-iterations":
        point = stream_iteration_crossover(
            platform, jobs=args.jobs, workers=workers,
            progress=args.progress,
        )
    else:
        point = hotspot_bandwidth_crossover(
            platform, jobs=args.jobs, workers=workers,
            progress=args.progress,
        )
    print(format_crossover(point))
    return 0


def cmd_report(args) -> int:
    from repro.bench.report import write_report

    path = write_report(_platform(args), args.output)
    print(f"wrote {path}")
    return 0


def cmd_search(args) -> int:
    from repro.partition.search import format_search, search_plan

    platform = _platform(args)
    config = PlanConfig(cpu_threads=args.threads)
    result = search_plan(
        args.app, platform, n=args.n, iterations=args.iterations,
        sync=args.sync, config=config, grid=args.grid, beam=args.beam,
        rounds=args.rounds, jobs=args.jobs, workers=_workers(args),
        fuse=args.fuse, progress=args.progress, plan_eval=args.plan_eval,
    )
    print(format_search(result, top=args.top))
    if args.output:
        import json
        from pathlib import Path

        path = Path(args.output)
        path.write_text(json.dumps(result.to_record(), indent=2) + "\n")
        print(f"\nwrote {path}")
    if args.min_plans_per_sec is not None and (
        result.plans_per_sec < args.min_plans_per_sec
    ):
        print(
            f"error: {result.plans_per_sec:.1f} plans/s below the "
            f"--min-plans-per-sec floor {args.min_plans_per_sec:g}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_baseline(args) -> int:
    from repro.bench.baseline import check_baseline, save_baseline

    platform = _platform(args)
    if args.save:
        path = save_baseline(platform, args.save)
        print(f"wrote baseline {path}")
        return 0
    diff = check_baseline(platform, args.check, rtol=args.rtol)
    print(diff.summary())
    return 0 if diff.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matchmaking applications and partitioning strategies "
                    "(ICPP 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list applications/strategies/experiments")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("platform", help="describe a platform preset")
    _add_common(p)
    p.set_defaults(func=cmd_platform)

    p = sub.add_parser("analyze", help="classify an application")
    _add_common(p)
    p.add_argument("app")
    p.add_argument("-n", type=int, default=None, help="problem size")
    sync = p.add_mutually_exclusive_group()
    sync.add_argument("--sync", dest="sync", action="store_true", default=None)
    sync.add_argument("--no-sync", dest="sync", action="store_false")
    _add_ranker(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "rank", help="play the strategy tournament (measured rankings)"
    )
    _add_common(p)
    _add_jobs(p)
    p.add_argument("--scale", type=float, default=1.0,
                   help="problem-size scale factor (0, 1]")
    p.add_argument("--compare", action="store_true",
                   help="compare the measured ordering against Table I and "
                        "flag cells where the paper's propositions break")
    p.set_defaults(func=cmd_rank)

    p = sub.add_parser("run", help="execute an application")
    _add_common(p)
    p.add_argument("app")
    p.add_argument("--strategy", default=None,
                   help="strategy name (default: matchmade best)")
    _add_ranker(p)
    p.add_argument("-n", type=int, default=None)
    p.add_argument("-i", "--iterations", type=int, default=None)
    p.add_argument("--threads", type=int, default=None,
                   help="SMP thread count m")
    p.add_argument("--tasks", type=int, default=None,
                   help="dynamic task count per kernel")
    sync = p.add_mutually_exclusive_group()
    sync.add_argument("--sync", dest="sync", action="store_true", default=None)
    sync.add_argument("--no-sync", dest="sync", action="store_false")
    p.add_argument("--stats", action="store_true",
                   help="print trace statistics")
    p.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    p.add_argument("--gantt-width", type=int, default=80)
    p.add_argument("--detail", choices=["summary", "full"], default="full",
                   help="keep the raw trace (full) or only the summary")
    p.add_argument("--max-events", type=int, default=None, metavar="N",
                   help="event budget per simulator drain (safety valve "
                        "against runaway loops; default 50M)")
    p.add_argument("--plan-eval", action="store_true",
                   help="route static plans through the compiled plan "
                        "evaluator (dynamic plans fall back to the "
                        "engine, identically; REPRO_PLAN_EVAL overrides)")
    p.add_argument("--profile", default=None, metavar="OUT.pstats",
                   help="cProfile the simulate call and write the stats "
                        "to this file (serial backend)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    _add_common(p)
    _add_jobs(p)
    p.add_argument("key", choices=sorted(EXPERIMENTS))
    p.add_argument("--scale", type=float, default=1.0,
                   help="problem-size scale factor (0, 1]")
    p.add_argument("-o", "--output", default=None,
                   help="export data to FILE.csv or FILE.json")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("speedup", help="regenerate Figure 12")
    _add_common(p)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_speedup)

    p = sub.add_parser("validate", help="run the paper-shape validation")
    _add_common(p)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "regenerate",
        help="export every table/figure's data to a directory",
    )
    _add_common(p)
    _add_jobs(p)
    p.add_argument("-o", "--output", default="results")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_regenerate)

    p = sub.add_parser("characterize", help="print the workload table")
    _add_common(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("crossover", help="run a crossover sweep")
    _add_common(p)
    _add_jobs(p)
    p.add_argument("sweep", choices=["stream-iterations", "hotspot-bandwidth"])
    p.set_defaults(func=cmd_crossover)

    p = sub.add_parser(
        "report", help="run the full evaluation and write a markdown report"
    )
    _add_common(p)
    p.add_argument("-o", "--output", default="REPORT.md")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "search",
        help="search (strategy x split ratio x chunking) for one scenario",
    )
    _add_common(p)
    _add_jobs(p)
    p.add_argument("app")
    p.add_argument("-n", type=int, default=None, help="problem size")
    p.add_argument("-i", "--iterations", type=int, default=None)
    p.add_argument("--threads", type=int, default=None,
                   help="SMP thread count m")
    sync = p.add_mutually_exclusive_group()
    sync.add_argument("--sync", dest="sync", action="store_true", default=None)
    sync.add_argument("--no-sync", dest="sync", action="store_false")
    p.add_argument("--grid", type=int, default=9,
                   help="coarse GPU-fraction grid points in [0, 1]")
    p.add_argument("--beam", type=int, default=3,
                   help="fraction candidates each refinement round expands")
    p.add_argument("--rounds", type=int, default=2,
                   help="halving refinement rounds after the coarse grid")
    p.add_argument("--top", type=int, default=10,
                   help="candidates shown in the report")
    p.add_argument("-o", "--output", default=None, metavar="FILE.json",
                   help="write the SearchResult record to FILE.json")
    p.add_argument("--plan-eval", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="route static candidates through the compiled "
                        "plan evaluator (default on; REPRO_PLAN_EVAL "
                        "overrides)")
    p.add_argument("--min-plans-per-sec", type=float, default=None,
                   metavar="X",
                   help="exit 1 if the search evaluated fewer than X "
                        "candidates per second (CI throughput gate)")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser(
        "baseline", help="save or check a regression baseline snapshot"
    )
    _add_common(p)
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument("--save", metavar="FILE", default=None)
    mode.add_argument("--check", metavar="FILE", default=None)
    p.add_argument("--rtol", type=float, default=0.01)
    p.set_defaults(func=cmd_baseline)

    return parser


#: snapshot file name inside ``--cache-dir``
CACHE_SNAPSHOT_NAME = "memo_snapshot.pkl"


def _cache_report(loaded: int, before) -> None:
    """Print this run's per-store hit rates to stderr (``--cache-dir``)."""
    import repro.cache as cache

    deltas = cache.stats_delta(before)
    parts = [
        f"{name} {d['hits']}/{d['hits'] + d['misses']} hits"
        for name, d in deltas.items()
    ]
    print(
        f"[cache] warm-started with {loaded} entries; "
        + (", ".join(parts) if parts else "no cache traffic"),
        file=sys.stderr,
    )
    _remote_cache_report()


def _remote_cache_report() -> None:
    """Per-remote-worker memo hit rates, when a distributed sweep ran."""
    distrib = sys.modules.get("repro.distrib.executor")
    if distrib is None:  # no --workers sweep this invocation
        return
    for report in distrib.last_sweep_reports():
        if not report.alive and report.cells == 0:
            line = f"dead ({report.error})"
        else:
            total = report.cache_hits + report.cache_misses
            line = (
                f"{report.cells} cells in {report.batches} batches, "
                f"{report.cache_hits}/{total} cache hits "
                f"({report.cache_hit_rate:.0%}), "
                f"{report.wire_bytes} wire bytes"
            )
            if not report.alive:
                line += f" — died mid-sweep ({report.error})"
        print(f"[cache] worker {report.endpoint}: {line}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    cache_dir = getattr(args, "cache_dir", None)
    snapshot_path = None
    before = None
    if cache_dir:
        import repro.cache as cache
        from pathlib import Path

        snapshot_path = Path(cache_dir) / CACHE_SNAPSHOT_NAME
        loaded = cache.load_snapshot(snapshot_path)
        before = cache.counters()
    try:
        rc = args.func(args)
    except BrokenPipeError:  # output piped into head & co.
        return 0
    except ConfigurationError as exc:
        # bad flag values (malformed --workers ...) get an argparse-style
        # one-liner, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if snapshot_path is not None:
        import repro.cache as cache

        saved = cache.save_snapshot(snapshot_path)
        _cache_report(loaded, before)
        print(f"[cache] saved {saved} entries to {snapshot_path}",
              file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
