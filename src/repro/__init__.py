"""repro — reproduction of "Matchmaking Applications and Partitioning
Strategies for Efficient Execution on Heterogeneous Platforms"
(Shen, Varbanescu, Martorell, Sips — ICPP 2015).

Quickstart::

    from repro import shen_icpp15_platform, get_application, match

    platform = shen_icpp15_platform()
    app = get_application("MatrixMul")
    outcome = match(app, platform, n=2048)
    print(outcome.report.app_class, outcome.strategy, outcome.makespan_ms)

Package map:

* :mod:`repro.platform` — the simulated heterogeneous platform (Table III)
* :mod:`repro.sim` — the discrete-event engine and traces
* :mod:`repro.runtime` — the OmpSs-like task runtime and schedulers
* :mod:`repro.partition` — the five partitioning strategies + baselines
* :mod:`repro.core` — the application analyzer and matchmaker
* :mod:`repro.apps` — the evaluation workloads (Table II)
* :mod:`repro.bench` — experiment drivers regenerating the paper's figures
"""

from repro.platform import (
    Platform,
    balanced_platform,
    fusion_platform,
    shen_icpp15_platform,
)
from repro.apps import all_applications, get_application, paper_applications
from repro.core import (
    AnalysisReport,
    AppClass,
    MatchResult,
    analyze,
    classify_program,
    format_analysis,
    format_match,
    match,
    ranking,
    run_best,
)
from repro.partition import (
    ExecutionPlan,
    PlanConfig,
    get_strategy,
    list_strategies,
    run_plan,
)
from repro.artifact import RunArtifact, TraceSummary
from repro.runtime import ExecutionResult, RuntimeConfig

__version__ = "1.0.0"

__all__ = [
    "Platform",
    "balanced_platform",
    "fusion_platform",
    "shen_icpp15_platform",
    "all_applications",
    "get_application",
    "paper_applications",
    "AnalysisReport",
    "AppClass",
    "MatchResult",
    "analyze",
    "classify_program",
    "format_analysis",
    "format_match",
    "match",
    "ranking",
    "run_best",
    "ExecutionPlan",
    "PlanConfig",
    "get_strategy",
    "list_strategies",
    "run_plan",
    "ExecutionResult",
    "RunArtifact",
    "RuntimeConfig",
    "TraceSummary",
    "__version__",
]
