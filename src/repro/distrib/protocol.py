"""Wire protocol for distributed sweeps: framed, version-stamped pickles.

Every message travels as one *frame*:

========  ======  =====================================================
bytes     field   meaning
========  ======  =====================================================
0..3      magic   ``b"RPRO"`` — rejects cross-talk from non-repro peers
4         ver     :data:`PROTOCOL_VERSION`; mismatches are rejected at
                  the first frame, never half-interpreted
5         type    message kind (:data:`MSG_HELLO` ...)
6..9      length  payload byte count, unsigned big-endian
10..      payload ``pickle`` of the message body
========  ======  =====================================================

Receivers validate magic, version, type, and length *before* reading the
payload; a corrupt, short, oversized, or alien frame raises
:class:`~repro.errors.WorkerProtocolError` immediately instead of
blocking on a read that will never complete.  Short reads (the peer died
mid-frame) raise :class:`ConnectionClosedError`.  All socket reads honor
the socket's configured timeout, so a hung peer surfaces as
``socket.timeout`` to the caller, which treats it like a dead one.

Payloads are pickles, so the two ends must mutually trust each other —
the trust model is documented in ``docs/distributed.md``.

Message kinds
-------------
``MSG_HELLO`` (client -> worker)
    Session handshake: ``{"protocol", "detail", "jobs", "snapshot"}``.
    The parent's :func:`repro.cache.snapshot_stores` bundle rides along
    *once per session* here — never per cell — so remote warm-cache hit
    rates match local runs.
``MSG_WELCOME`` (worker -> client)
    Handshake accept: ``{"pid", "installed", "jobs"}``.
``MSG_BATCH`` (client -> worker)
    One unit of pull-based work: ``{"batch_id", "cells"}``.
``MSG_CELL`` (worker -> client)
    One **streamed** result: ``{"batch_id", "pos", "artifact"}`` — sent
    the moment cell ``pos`` (its position inside the batch) finishes,
    while the rest of the batch is still executing.  Streaming per cell
    is what lets the client overlap reporting with execution and feed
    observed per-cell latency into its adaptive dispatch sizing.
``MSG_RESULT`` (worker -> client)
    End-of-batch marker: ``{"batch_id", "cells_done", "cache_delta"}``.
    Artifacts no longer ride here (v1 buffered the whole batch into this
    frame); ``cells_done`` lets the client cross-check it saw every
    ``MSG_CELL``, and ``cache_delta`` is the worker-side
    :func:`repro.cache.stats_delta` of the batch window (feeds the
    per-remote-worker hit-rate report).
``MSG_ERROR`` (worker -> client)
    ``{"batch_id", "error"}`` — the batch *executed* and failed
    deterministically (unknown app, inapplicable strategy ...).  The
    client raises instead of re-dispatching: the same cells would fail
    on every worker.
``MSG_BYE`` (client -> worker)
    Polite end of session; the worker goes back to accepting sessions.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.errors import WorkerProtocolError

#: bump on any frame-layout or payload-shape change; peers must match
#: (v2: per-cell MSG_CELL streaming; MSG_RESULT became the end-of-batch
#: marker and stopped carrying artifacts)
PROTOCOL_VERSION = 2

#: frame magic: rejects peers that are not speaking this protocol at all
MAGIC = b"RPRO"

#: header layout: magic, version, message type, payload length
HEADER = struct.Struct(">4sBBI")

#: hard ceiling on one frame's payload; a corrupt length prefix must not
#: make the receiver try to allocate/stream gigabytes (full-detail
#: artifact batches are the largest legitimate frames, well under this)
MAX_FRAME_BYTES = 1 << 30

MSG_HELLO = 1
MSG_WELCOME = 2
MSG_BATCH = 3
MSG_RESULT = 4
MSG_ERROR = 5
MSG_BYE = 6
MSG_CELL = 7

#: message kinds a receiver will accept (anything else is a bad frame)
_KNOWN_TYPES = frozenset(
    (MSG_HELLO, MSG_WELCOME, MSG_BATCH, MSG_RESULT, MSG_ERROR, MSG_BYE,
     MSG_CELL)
)


class ConnectionClosedError(WorkerProtocolError):
    """The peer closed the connection (cleanly or mid-frame)."""


def send_frame(sock: socket.socket, msg_type: int, payload: Any) -> int:
    """Send one frame; returns the total bytes put on the wire."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise WorkerProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, msg_type, len(body))
    sock.sendall(header)
    sock.sendall(body)
    return len(header) + len(body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosedError`.

    Honors the socket timeout per ``recv`` call; a peer that stops
    sending mid-frame therefore surfaces as ``socket.timeout`` rather
    than blocking forever.
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosedError(
                f"peer closed the connection with {remaining} of {n} "
                "bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[int, Any, int]:
    """Receive one frame; returns ``(msg_type, payload, wire_bytes)``.

    Raises :class:`~repro.errors.WorkerProtocolError` on a malformed
    header (bad magic, unknown version or type, oversized length) and
    :class:`ConnectionClosedError` on a clean close before a frame or a
    short read inside one.  The payload pickle is only read once the
    header validated, so a garbage frame never triggers a huge read.
    """
    try:
        raw = _recv_exact(sock, HEADER.size)
    except ConnectionClosedError:
        # distinguish "closed between frames" for callers that care:
        # re-raise with a cleaner message when nothing was read at all
        raise
    magic, version, msg_type, length = HEADER.unpack(raw)
    if magic != MAGIC:
        raise WorkerProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}); peer is not "
            "speaking the repro.distrib protocol"
        )
    if version != PROTOCOL_VERSION:
        raise WorkerProtocolError(
            f"protocol version mismatch: peer speaks v{version}, this end "
            f"speaks v{PROTOCOL_VERSION}"
        )
    if msg_type not in _KNOWN_TYPES:
        raise WorkerProtocolError(f"unknown message type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise WorkerProtocolError(
            f"frame announces {length} payload bytes, above the "
            f"{MAX_FRAME_BYTES}-byte ceiling — rejecting as corrupt"
        )
    body = _recv_exact(sock, length)
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure
        raise WorkerProtocolError(f"frame payload failed to unpickle: {exc}")
    return msg_type, payload, HEADER.size + length


def expect_frame(sock: socket.socket, msg_type: int) -> tuple[Any, int]:
    """Receive one frame and require its type; ``(payload, wire_bytes)``."""
    got, payload, nbytes = recv_frame(sock)
    if got != msg_type:
        if got == MSG_ERROR and isinstance(payload, dict):
            raise WorkerProtocolError(
                f"peer reported an error: {payload.get('error')}"
            )
        raise WorkerProtocolError(
            f"expected message type {msg_type}, got {got}"
        )
    return payload, nbytes
