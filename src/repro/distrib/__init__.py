"""Distributed sweep execution over socket-connected remote workers.

:mod:`repro.bench.harness.run_sweep` fans cells out over *local* worker
processes; this package extends the same sweep contract across machine
boundaries.  A worker server (``python -m repro.distrib.worker --listen
HOST:PORT``) accepts framed :class:`~repro.bench.harness.SweepCell`
batches and returns summarized :class:`~repro.artifact.RunArtifact`
bundles — the ~300x-smaller pickles PR 2 introduced precisely so sweep
results are cheap to ship over a socket.  The client side
(:class:`~repro.distrib.executor.DistributedSweepExecutor`) is what
``run_sweep(..., workers=["host:port", ...])`` and the CLI ``--workers``
flag drive.

Layer map
---------
:mod:`repro.distrib.protocol`
    Length-prefixed, version-stamped frames; pickled payloads; the
    corrupt/short-frame rejection rules.
:mod:`repro.distrib.endpoints`
    ``host:port`` parsing/validation (clear errors for malformed
    ``--workers`` values).
:mod:`repro.distrib.worker`
    The worker server and its ``python -m repro.distrib.worker`` CLI.
:mod:`repro.distrib.executor`
    Pull-based client: batches are dispatched to a worker only when it
    is idle, dead/hung workers' cells are re-dispatched onto the
    remaining pool, and results reassemble in cell order so a
    distributed sweep is byte-identical to a serial one.

Trust model: frames carry pickles, so workers and clients must mutually
trust each other — bind workers to loopback or a private network only
(see ``docs/distributed.md``).
"""

__all__ = [
    "DistributedSweepExecutor",
    "PROTOCOL_VERSION",
    "WorkerReport",
    "WorkerServer",
    "format_endpoint",
    "last_sweep_reports",
    "parse_endpoint",
    "parse_endpoints",
]

#: lazy re-exports: importing the package must not import submodules
#: eagerly — ``python -m repro.distrib.worker`` would otherwise find the
#: worker module pre-imported by its own package (runpy warning)
_EXPORTS = {
    "format_endpoint": "repro.distrib.endpoints",
    "parse_endpoint": "repro.distrib.endpoints",
    "parse_endpoints": "repro.distrib.endpoints",
    "DistributedSweepExecutor": "repro.distrib.executor",
    "WorkerReport": "repro.distrib.executor",
    "last_sweep_reports": "repro.distrib.executor",
    "PROTOCOL_VERSION": "repro.distrib.protocol",
    "WorkerServer": "repro.distrib.worker",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.distrib' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
