"""Worker endpoint parsing: strict ``host:port`` with clear errors.

``--workers`` values come straight from users, so every malformed shape
is rejected with a message that names the offending value and the
expected form — never a traceback from ``socket.connect`` minutes into a
sweep.  Accepted forms:

* ``host:port`` — hostname or IPv4 literal;
* ``[v6addr]:port`` — IPv6 literals must be bracketed (the bare form is
  ambiguous with the port separator).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError

_EXPECTED = "expected HOST:PORT (or [IPV6]:PORT) with PORT in 1..65535"


def parse_endpoint(value: str, *, allow_ephemeral: bool = False) -> tuple[str, int]:
    """Parse one ``host:port`` string into ``(host, port)``.

    Raises :class:`~repro.errors.ConfigurationError` on anything
    malformed: missing port, empty host, non-numeric or out-of-range
    port, unbracketed IPv6.  ``allow_ephemeral`` admits port ``0`` —
    valid for a *listen* address (the kernel picks a free port) but
    never for a connect target.
    """
    text = value.strip()
    if not text:
        raise ConfigurationError(f"empty worker endpoint; {_EXPECTED}")
    if text.startswith("["):
        bracket = text.find("]")
        if bracket < 0 or not text[bracket + 1:].startswith(":"):
            raise ConfigurationError(
                f"malformed worker endpoint {value!r}; {_EXPECTED}"
            )
        host = text[1:bracket]
        port_text = text[bracket + 2:]
    else:
        host, sep, port_text = text.rpartition(":")
        if not sep:
            raise ConfigurationError(
                f"worker endpoint {value!r} has no port; {_EXPECTED}"
            )
        if ":" in host:
            raise ConfigurationError(
                f"worker endpoint {value!r} looks like an unbracketed IPv6 "
                f"address; {_EXPECTED}"
            )
    if not host:
        raise ConfigurationError(
            f"worker endpoint {value!r} has an empty host; {_EXPECTED}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"worker endpoint {value!r} has a non-numeric port "
            f"{port_text!r}; {_EXPECTED}"
        ) from None
    if not (0 if allow_ephemeral else 1) <= port <= 65535:
        raise ConfigurationError(
            f"worker endpoint {value!r} has out-of-range port {port}; "
            f"{_EXPECTED}"
        )
    return host, port


def parse_endpoints(values: Iterable[str]) -> list[tuple[str, int]]:
    """Parse many endpoints; comma-separated values are split first.

    Duplicate endpoints are rejected — connecting to the same worker
    twice would double-count its capacity and confuse re-dispatch.
    """
    seen: dict[tuple[str, int], str] = {}
    out: list[tuple[str, int]] = []
    for value in values:
        for part in str(value).split(","):
            if not part.strip():
                continue
            endpoint = parse_endpoint(part)
            if endpoint in seen:
                raise ConfigurationError(
                    f"worker endpoint {part.strip()!r} given more than once"
                )
            seen[endpoint] = part
            out.append(endpoint)
    if not out:
        raise ConfigurationError(
            f"no worker endpoints found in {list(values)!r}; {_EXPECTED}"
        )
    return out


def format_endpoint(endpoint: tuple[str, int] | Sequence) -> str:
    """Render ``(host, port)`` back to its display form."""
    host, port = endpoint
    if ":" in host:
        return f"[{host}]:{port}"
    return f"{host}:{port}"
