"""The sweep worker server: ``python -m repro.distrib.worker``.

A worker binds one listening socket and serves client sessions one at a
time (a sweep is one session; concurrent clients queue in the listen
backlog).  Inside a session the worker is purely reactive — the client
dispatches a :data:`~repro.distrib.protocol.MSG_BATCH` only when this
worker is idle (pull-based scheduling), the worker executes the batch's
:class:`~repro.bench.harness.SweepCell` list and **streams one**
:data:`~repro.distrib.protocol.MSG_CELL` frame per completed cell (via
:func:`~repro.bench.harness.run_sweep_iter`, so worker-side ``--jobs``
pools stream too), then closes the batch with one
:data:`~repro.distrib.protocol.MSG_RESULT` end-of-batch marker carrying
the batch's worker-side cache hit/miss delta.  Streaming per cell lets
the client overlap reporting with execution and observe per-cell
service latency for its adaptive dispatch sizing.

The session handshake installs the client's :mod:`repro.cache` snapshot
**once** — not per cell — so a remote worker replays the client's warm
probes and predictions exactly like a local ``run_sweep`` worker process
does.  Entries the worker computes itself stay local (additions never
flow back), matching the local pool contract.

A transport error mid-session (client died, corrupt frame) abandons the
session and returns to accepting new ones; a *deterministic* cell
failure is reported back as :data:`~repro.distrib.protocol.MSG_ERROR`
so the client can fail fast instead of re-dispatching cells that would
fail identically everywhere.

``fail_after=N`` is a fault-injection hook for tests and drills: the
worker drops dead (connection cut, server stopped, no reply) after
executing N cells — possibly mid-batch, *after* streaming some of the
batch's cells — which must leave a client sweep complete, deduplicated,
and byte-identical via re-dispatch of only the unstreamed cells.
``delay_per_cell=S`` sleeps S seconds per cell, a deterministic way to
build a skewed pool for adaptivity tests and benches.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
import traceback

import repro.cache as _cache
from repro.distrib import protocol
from repro.distrib.endpoints import format_endpoint, parse_endpoint
from repro.errors import WorkerProtocolError


class _SessionAborted(Exception):
    """Internal: the fail_after fault injection tripped mid-session."""


class WorkerServer:
    """A sweep worker bound to ``host:port`` (``port=0`` = ephemeral).

    Parameters
    ----------
    jobs:
        Worker-side parallelism for each batch.  ``None`` (default)
        honors the ``jobs`` the client sends in its handshake; an
        explicit value pins it regardless of the client.  ``1`` runs the
        batch serially in-process, ``0``/``>1`` fan out over local
        processes exactly like ``run_sweep --jobs``.
    fail_after:
        Fault injection: die abruptly (no reply, socket cut, server
        stopped) after executing this many cells in total — possibly
        mid-batch, after streaming part of it.
    delay_per_cell:
        Fault injection: sleep this many seconds per cell before
        streaming its result, making this worker deterministically slow
        (skewed-pool tests and benches).
    accept_timeout_s:
        Poll interval for the stop flag while waiting for connections.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int | None = None,
        fail_after: int | None = None,
        delay_per_cell: float | None = None,
        accept_timeout_s: float = 0.25,
        verbose: bool = False,
    ) -> None:
        self.jobs = jobs
        self.fail_after = fail_after
        self.delay_per_cell = delay_per_cell
        self.verbose = verbose
        self._cells_executed = 0
        self._stopped = False
        self._thread = None
        self.sessions_served = 0
        self._sock = socket.socket(socket.AF_INET6 if ":" in host else socket.AF_INET)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(8)
        self._sock.settimeout(accept_timeout_s)
        self.address: tuple[str, int] = self._sock.getsockname()[:2]

    @property
    def endpoint(self) -> str:
        """The ``host:port`` string clients pass to ``--workers``."""
        return format_endpoint(self.address)

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[worker {self.endpoint}] {message}", file=sys.stderr)

    # -- serving ---------------------------------------------------------

    def serve_forever(self, *, max_sessions: int | None = None) -> None:
        """Accept and serve sessions until :meth:`stop` (or the cap)."""
        try:
            while not self._stopped:
                try:
                    conn, peer = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listening socket closed under us by stop()
                with conn:
                    self._log(f"session from {peer[0]}:{peer[1]}")
                    try:
                        self._serve_session(conn)
                    except _SessionAborted:
                        self._log("fault injection tripped; dying")
                        self._stopped = True
                    except (
                        WorkerProtocolError,
                        socket.timeout,
                        OSError,
                        EOFError,
                    ) as exc:
                        # a broken client must never take the worker down
                        self._log(f"session aborted: {exc}")
                self.sessions_served += 1
                if max_sessions is not None and self.sessions_served >= max_sessions:
                    break
        finally:
            self._sock.close()

    def start(self) -> "WorkerServer":
        """Serve in a daemon thread (tests and in-process benchmarks)."""
        import threading

        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving; joins the background thread when one is running."""
        self._stopped = True
        try:
            self._sock.close()
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- one session -----------------------------------------------------

    def _serve_session(self, conn: socket.socket) -> None:
        conn.settimeout(None)  # the client paces the session
        hello, _ = protocol.expect_frame(conn, protocol.MSG_HELLO)
        if hello.get("protocol") != protocol.PROTOCOL_VERSION:
            protocol.send_frame(conn, protocol.MSG_ERROR, {
                "batch_id": None,
                "error": f"protocol version mismatch: client "
                         f"v{hello.get('protocol')}, worker "
                         f"v{protocol.PROTOCOL_VERSION}",
            })
            return
        detail = hello.get("detail", "summary")
        jobs = self.jobs if self.jobs is not None else int(hello.get("jobs", 1))
        snapshot = hello.get("snapshot") or {}
        installed = 0
        if snapshot:
            # once per session — this is what recovers local warm hit rates
            for entries in snapshot.values():
                installed += len(entries)
            _cache.preload_snapshot(snapshot)
        protocol.send_frame(conn, protocol.MSG_WELCOME, {
            "pid": os.getpid(),
            "installed": installed,
            "jobs": jobs,
        })
        while True:
            msg_type, payload, _ = protocol.recv_frame(conn)
            if msg_type == protocol.MSG_BYE:
                self._log("session closed cleanly")
                return
            if msg_type != protocol.MSG_BATCH:
                raise WorkerProtocolError(
                    f"unexpected message type {msg_type} inside a session"
                )
            self._run_batch(conn, payload, detail=detail, jobs=jobs)

    def _run_batch(
        self, conn: socket.socket, payload: dict, *, detail: str, jobs: int
    ) -> None:
        """Execute one batch, streaming a ``MSG_CELL`` per finished cell.

        ``fail_after`` is checked before *each* cell, so the fault can
        trip mid-batch with part of the batch already streamed — the
        client must dedupe those cells out of its re-dispatch.
        """
        from repro.bench.harness import run_sweep_iter

        batch_id = payload.get("batch_id")
        cells = payload.get("cells") or []
        before = _cache.counters()
        streamed = 0
        try:
            for pos, artifact in run_sweep_iter(cells, jobs=jobs, detail=detail):
                if (
                    self.fail_after is not None
                    and self._cells_executed >= self.fail_after
                ):
                    raise _SessionAborted()
                self._cells_executed += 1
                if self.delay_per_cell:
                    time.sleep(self.delay_per_cell)
                protocol.send_frame(conn, protocol.MSG_CELL, {
                    "batch_id": batch_id,
                    "pos": pos,
                    "artifact": artifact,
                })
                streamed += 1
        except _SessionAborted:
            raise
        except Exception:  # noqa: BLE001 - report any cell failure verbatim
            protocol.send_frame(conn, protocol.MSG_ERROR, {
                "batch_id": batch_id,
                "error": traceback.format_exc(),
            })
            return
        protocol.send_frame(conn, protocol.MSG_RESULT, {
            "batch_id": batch_id,
            "cells_done": streamed,
            "cache_delta": _cache.stats_delta(before),
        })
        self._log(f"batch {batch_id}: {streamed} cells done")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib.worker",
        description="Serve repro sweep cells to remote run_sweep clients.",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0 = loopback, ephemeral "
             "port; the bound endpoint is printed on stderr)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="pin worker-side batch parallelism (default: honor the "
             "client's --jobs; 1 = serial, 0 = all cores)",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the bound HOST:PORT to PATH once listening (lets "
             "scripts wait for startup and discover ephemeral ports)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None, metavar="N",
        help="exit after serving N client sessions (CI hygiene)",
    )
    parser.add_argument(
        "--fail-after", type=int, default=None, metavar="N",
        help="fault injection: crash after executing N cells (tests the "
             "client's re-dispatch path)",
    )
    parser.add_argument(
        "--delay-per-cell", type=float, default=None, metavar="SECONDS",
        help="fault injection: sleep SECONDS per cell before streaming "
             "its result — a deterministically slow worker for skewed-"
             "pool tests and benches of the adaptive dispatcher",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    host, port = parse_endpoint(args.listen, allow_ephemeral=True)
    server = WorkerServer(
        host, port,
        jobs=args.jobs, fail_after=args.fail_after,
        delay_per_cell=args.delay_per_cell, verbose=args.verbose,
    )
    print(f"[worker] listening on {server.endpoint}", file=sys.stderr)
    if args.ready_file:
        with open(args.ready_file, "w") as fh:
            fh.write(server.endpoint + "\n")
    try:
        server.serve_forever(max_sessions=args.max_sessions)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
