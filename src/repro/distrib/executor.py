"""Client side of distributed sweeps: stream cells over remote workers.

:class:`DistributedSweepExecutor` drives one sweep session against a
pool of :mod:`repro.distrib.worker` servers:

* **Pull-based scheduling** — one feeder thread per worker dispatches a
  batch only when its worker is idle, so fast workers naturally take
  more of the queue and a slow worker never strands work behind it.
* **Streaming results** — workers send one ``MSG_CELL`` frame per
  *completed* cell (protocol v2), and :meth:`run_iter` yields each
  ``(index, artifact)`` pair the moment it arrives, so consumers overlap
  reporting with execution; time-to-first-result is one cell, not the
  whole sweep.  :meth:`run` is the buffered collect-and-reorder wrapper.
* **Adaptive, latency-aware batch sizing** — each feeder starts with a
  small probe dispatch and then sizes every subsequent dispatch from an
  EWMA of that worker's observed per-cell service latency, targeting a
  fixed wall-clock quantum per dispatch (``target_quantum_s``).  A slow
  worker therefore holds few cells at a time (short re-dispatch tail,
  no hoarding) while a fast worker amortizes framing over large batches
  — the same imbalance-sensitivity insight behind the paper's dynamic
  (DP-*) strategies, applied at the sweep level.  An explicit
  ``batch_size`` pins a fixed size instead.
* **Snapshot-once handshake** — each worker receives the parent's
  :func:`repro.cache.snapshot_stores` bundle exactly once per session
  (in ``MSG_HELLO``), not per cell, so remote warm-cache hit rates match
  local ``run_sweep`` workers.
* **Failure containment** — every frame wait has a timeout (now a
  per-cell ceiling, since results stream as they finish); a dead or
  hung worker's **unstreamed** cells are re-dispatched onto the
  remaining pool, deduplicated by cell index so cells already streamed
  from the dead worker's partial batch are never re-yielded (bounded
  attempts per cell, so a poison cell cannot ping-pong forever), and
  connection setup retries with backoff.  If the whole pool dies, the
  leftover cells run locally by default (``fallback="local"``) so the
  sweep still completes; ``fallback="error"`` raises instead.
* **Deterministic reassembly** — :meth:`run` writes results into their
  cell's original index, so a distributed sweep returns artifacts in
  cell order, byte-identical to a serial ``run_sweep`` over the same
  cells (cell execution is deterministic; re-running a cell elsewhere
  yields the same artifact).

Per-worker accounting (cells, batches, wire bytes, remote cache
hit/miss, latency EWMA, largest dispatch) is kept in
:class:`WorkerReport` objects, exposed on the executor and via
:func:`last_sweep_reports` for the CLI's ``--cache-dir`` stderr report
and the ``sweep_distributed``/``sweep_streaming`` benchmark metrics.
"""

from __future__ import annotations

import math
import queue
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import repro.cache as _cache
from repro.bench.harness import _canonicalize
from repro.distrib import protocol
from repro.distrib.endpoints import format_endpoint, parse_endpoints
from repro.errors import DistributedSweepError, WorkerProtocolError

#: transport failures that mark a worker dead and re-dispatch its cells
_TRANSPORT_ERRORS = (
    WorkerProtocolError,
    ConnectionError,
    socket.timeout,
    TimeoutError,
    OSError,
    EOFError,
)


@dataclass
class WorkerReport:
    """What one remote worker contributed to a sweep."""

    endpoint: str
    batches: int = 0
    cells: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: worker-side memo-store hits/misses summed over this session's batches
    cache_hits: int = 0
    cache_misses: int = 0
    redispatched_batches: int = 0
    alive: bool = True
    error: str | None = None
    #: the adaptive controller's view of this worker's per-cell latency
    ewma_cell_s: float | None = None
    #: largest dispatch the controller grew to (1 = probe only)
    largest_batch: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def wire_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received


class _AdaptiveBatcher:
    """Latency-aware dispatch sizing for one worker.

    The first dispatch is a small probe (``probe`` cells).  Every
    streamed cell updates an EWMA of the worker's per-cell service
    latency (inter-arrival time, so dispatch/framing overhead is
    amortized into it), and the next dispatch is sized so the worker
    holds roughly ``target_quantum_s`` of wall-clock work: slow workers
    get small batches (short tail, cheap re-dispatch), fast workers get
    large ones (framing amortized).
    """

    def __init__(
        self,
        *,
        target_quantum_s: float,
        alpha: float,
        probe: int,
        max_dispatch: int,
        fixed: int | None = None,
    ) -> None:
        self.target_quantum_s = target_quantum_s
        self.alpha = alpha
        self.probe = max(1, probe)
        self.max_dispatch = max(1, max_dispatch)
        self.fixed = fixed
        self.ewma_s: float | None = None

    def next_size(self) -> int:
        if self.fixed is not None:
            return self.fixed
        if self.ewma_s is None:
            return self.probe
        cells = math.ceil(self.target_quantum_s / max(self.ewma_s, 1e-9))
        return max(1, min(self.max_dispatch, cells))

    def observe(self, cell_seconds: float) -> None:
        if self.ewma_s is None:
            self.ewma_s = cell_seconds
        else:
            self.ewma_s = (
                self.alpha * cell_seconds + (1.0 - self.alpha) * self.ewma_s
            )


@dataclass
class _SweepState:
    """Shared mutable state guarded by one lock/condition pair."""

    #: cell indices awaiting dispatch (front = next out)
    pending: deque = field(default_factory=deque)
    #: cells currently dispatched to some worker (drives idle waiting)
    in_flight: int = 0
    #: per-cell dispatch counts (bounds poison-cell re-dispatch)
    attempts: list = field(default_factory=list)
    #: cells past the attempt cap, destined for the fallback path
    dead_letters: list = field(default_factory=list)
    fatal: str | None = None
    #: the consumer abandoned the iterator; feeders drain out
    cancelled: bool = False


#: the most recent sweep's per-worker reports (CLI/bench reporting)
_LAST_REPORTS: list[WorkerReport] = []


def last_sweep_reports() -> list[WorkerReport]:
    """Per-worker reports of the most recent distributed sweep."""
    return list(_LAST_REPORTS)


class DistributedSweepExecutor:
    """Run sweep cells across socket-connected workers (one session).

    Parameters
    ----------
    workers:
        Endpoints: ``"host:port"`` strings (comma-separable) or
        ``(host, port)`` tuples.
    jobs:
        Forwarded to each worker in the handshake as its intra-batch
        parallelism (a worker started with an explicit ``--jobs`` pins
        its own value instead).
    batch_size:
        Pin a *fixed* cells-per-dispatch size, disabling the adaptive
        controller (default: adaptive — probe first, then sized from the
        worker's per-cell latency EWMA to ``target_quantum_s`` of work).
    target_quantum_s:
        Wall-clock amount of work the adaptive controller aims to hand a
        worker per dispatch.  Bounds the straggler tail: a dying worker
        loses at most ~one quantum of (re-dispatchable) work.
    ewma_alpha:
        Smoothing factor of the per-cell latency EWMA (higher = adapt
        faster to drift).
    probe_batch:
        Cells in the first (probe) dispatch to a worker, before any
        latency has been observed.
    max_dispatch:
        Ceiling on one dispatch regardless of how fast a worker looks
        (bounds re-execution cost when it dies).
    call_timeout_s:
        Ceiling on waiting for the *next* streamed frame from a worker
        (effectively per-cell, since results stream as they finish); a
        worker that blows it is treated as hung and its unstreamed cells
        re-dispatched.
    connect_attempts / connect_backoff_s / connect_timeout_s:
        Connection establishment retries with linear backoff.
    max_redispatch:
        Attempt ceiling per cell (default: pool size + 1); beyond it the
        cell is dead-lettered to the fallback path instead of being
        re-dispatched (a poison cell must not take every worker down).
    fallback:
        ``"local"`` (default) runs cells the pool could not finish in
        this process; ``"error"`` raises
        :class:`~repro.errors.DistributedSweepError` instead.
    """

    def __init__(
        self,
        workers: Iterable[str] | Sequence[tuple[str, int]],
        *,
        jobs: int = 1,
        batch_size: int | None = None,
        target_quantum_s: float = 0.25,
        ewma_alpha: float = 0.4,
        probe_batch: int = 1,
        max_dispatch: int = 64,
        call_timeout_s: float = 600.0,
        connect_timeout_s: float = 10.0,
        connect_attempts: int = 3,
        connect_backoff_s: float = 0.25,
        max_redispatch: int | None = None,
        fallback: str = "local",
    ) -> None:
        workers = list(workers)
        if workers and isinstance(workers[0], tuple):
            self.endpoints = [tuple(w) for w in workers]
        else:
            self.endpoints = parse_endpoints(workers)
        if fallback not in ("local", "error"):
            raise DistributedSweepError(
                f"fallback must be 'local' or 'error', got {fallback!r}"
            )
        if batch_size is not None and batch_size < 1:
            raise DistributedSweepError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.jobs = jobs
        self.batch_size = batch_size
        self.target_quantum_s = target_quantum_s
        self.ewma_alpha = ewma_alpha
        self.probe_batch = probe_batch
        self.max_dispatch = max_dispatch
        self.call_timeout_s = call_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.connect_attempts = max(1, connect_attempts)
        self.connect_backoff_s = connect_backoff_s
        self.max_redispatch = max_redispatch
        self.fallback = fallback
        self.reports: list[WorkerReport] = []

    # -- public API ------------------------------------------------------

    def run(self, cells, *, detail: str = "summary", share_cache: bool = True):
        """Execute ``cells`` on the worker pool; artifacts in cell order.

        The buffered wrapper over :meth:`run_iter`: collecting the
        streamed pairs and writing each into its original index restores
        cell order, so the output is byte-identical to a serial sweep.
        """
        cells = list(cells)
        results = [None] * len(cells)
        for index, artifact in self.run_iter(
            cells, detail=detail, share_cache=share_cache
        ):
            results[index] = artifact
        return results

    def run_iter(
        self, cells, *, detail: str = "summary", share_cache: bool = True
    ) -> Iterator[tuple[int, object]]:
        """Stream ``(index, artifact)`` pairs as remote cells complete.

        Pairs arrive in completion order across the whole pool.  Every
        cell is yielded exactly once — cells streamed from a worker that
        later died are deduplicated out of the re-dispatch by index.  A
        deterministic cell failure raises
        :class:`~repro.errors.DistributedSweepError` mid-iteration;
        cells a dead pool cannot finish are executed locally and yielded
        last (``fallback="local"``) or raise (``fallback="error"``).
        """
        from repro.artifact import check_detail

        check_detail(detail)
        cells = list(cells)
        self.reports = [
            WorkerReport(endpoint=format_endpoint(ep)) for ep in self.endpoints
        ]
        global _LAST_REPORTS
        _LAST_REPORTS = self.reports
        if not cells:
            return

        state = _SweepState(
            pending=deque(range(len(cells))),
            attempts=[0] * len(cells),
        )
        results: list = [None] * len(cells)
        filled = [False] * len(cells)
        snapshot = _cache.snapshot_stores() if share_cache else {}
        cond = threading.Condition()
        out_q: queue.Queue = queue.Queue()
        attempt_cap = (
            self.max_redispatch
            if self.max_redispatch is not None
            else len(self.endpoints) + 1
        )

        threads = []
        for endpoint, report in zip(self.endpoints, self.reports):
            thread = threading.Thread(
                target=self._drive_worker,
                args=(endpoint, report, state, cond, cells, results, filled,
                      out_q, snapshot, detail, attempt_cap),
                daemon=True,
            )
            thread.start()
            threads.append(thread)

        yielded = 0
        exited = 0
        try:
            # every feeder enqueues its cells before its exit marker, so
            # once all exit markers are drained no cell event remains
            while yielded < len(cells) and exited < len(threads):
                kind, index, artifact = out_q.get()
                if kind == "exit":
                    exited += 1
                    continue
                yield index, artifact
                yielded += 1
        finally:
            with cond:
                state.cancelled = True
                cond.notify_all()
        for thread in threads:
            thread.join()

        if state.fatal is not None:
            raise DistributedSweepError(
                f"a worker reported a non-transient cell failure:\n{state.fatal}"
            )
        leftovers = sorted(
            i
            for i in (list(state.pending) + state.dead_letters)
            if not filled[i]
        )
        if leftovers:
            dead = [r.endpoint for r in self.reports if not r.alive]
            if self.fallback == "error":
                raise DistributedSweepError(
                    f"{len(leftovers)} cells could not be executed remotely "
                    f"(dead workers: {dead or 'none'})"
                )
            from repro.bench.harness import _run_cell

            print(
                f"[distrib] {len(leftovers)} of {len(cells)} cells fell back "
                f"to local execution (dead workers: {', '.join(dead) or 'none'})",
                file=sys.stderr,
            )
            for i in leftovers:
                results[i] = _canonicalize(_run_cell(cells[i], detail))
                filled[i] = True
                yield i, results[i]
                yielded += 1
        if yielded < len(cells):
            raise DistributedSweepError(
                f"internal error: {len(cells) - yielded} cells never "
                "produced a result"
            )

    # -- per-worker feeder thread ---------------------------------------

    def _connect(self, endpoint, report, snapshot, detail):
        """Connect + handshake with retry/backoff; returns the socket."""
        last_exc: Exception | None = None
        for attempt in range(self.connect_attempts):
            if attempt:
                time.sleep(self.connect_backoff_s * attempt)
            try:
                sock = socket.create_connection(
                    endpoint, timeout=self.connect_timeout_s
                )
            except OSError as exc:
                last_exc = exc
                continue
            try:
                sock.settimeout(self.call_timeout_s)
                report.bytes_sent += protocol.send_frame(
                    sock, protocol.MSG_HELLO, {
                        "protocol": protocol.PROTOCOL_VERSION,
                        "detail": detail,
                        "jobs": self.jobs,
                        "snapshot": snapshot,
                    },
                )
                _welcome, nbytes = protocol.expect_frame(
                    sock, protocol.MSG_WELCOME
                )
                report.bytes_received += nbytes
                return sock
            except _TRANSPORT_ERRORS as exc:
                last_exc = exc
                sock.close()
        raise DistributedSweepError(
            f"could not establish a session with {report.endpoint} after "
            f"{self.connect_attempts} attempts: {last_exc}"
        )

    def _requeue_or_dead_letter(self, state, index, attempt_cap) -> None:
        """Route one unstreamed cell of a dead worker (cond held)."""
        state.in_flight -= 1
        if state.attempts[index] >= attempt_cap:
            state.dead_letters.append(index)
        else:
            # back of the queue: surviving workers finish their current
            # work before picking up the orphan
            state.pending.append(index)

    def _drive_worker(
        self, endpoint, report, state, cond, cells, results, filled,
        out_q, snapshot, detail, attempt_cap,
    ) -> None:
        try:
            try:
                sock = self._connect(endpoint, report, snapshot, detail)
            except DistributedSweepError as exc:
                with cond:
                    report.alive = False
                    report.error = str(exc)
                    cond.notify_all()
                return
            controller = _AdaptiveBatcher(
                target_quantum_s=self.target_quantum_s,
                alpha=self.ewma_alpha,
                probe=self.probe_batch,
                max_dispatch=self.max_dispatch,
                fixed=self.batch_size,
            )
            batch_id = 0
            indices: list[int] = []
            streamed: set = set()
            try:
                while True:
                    with cond:
                        indices = []
                        while state.fatal is None and not state.cancelled:
                            if state.pending:
                                size = min(
                                    controller.next_size(), len(state.pending)
                                )
                                indices = [
                                    state.pending.popleft()
                                    for _ in range(size)
                                ]
                                state.in_flight += len(indices)
                                for i in indices:
                                    state.attempts[i] += 1
                                break
                            if state.in_flight == 0:
                                break
                            # another worker holds the remaining cells;
                            # wait in case some are re-dispatched our way
                            cond.wait(0.05)
                        if not indices:
                            break
                    report.largest_batch = max(
                        report.largest_batch, len(indices)
                    )
                    streamed = set()
                    batch_id += 1
                    report.bytes_sent += protocol.send_frame(
                        sock, protocol.MSG_BATCH, {
                            "batch_id": batch_id,
                            "cells": [cells[i] for i in indices],
                        },
                    )
                    t_prev = time.monotonic()
                    fatal_error = None
                    while len(streamed) < len(indices):
                        msg_type, payload, nbytes = protocol.recv_frame(sock)
                        report.bytes_received += nbytes
                        if msg_type == protocol.MSG_ERROR:
                            fatal_error = str(payload.get("error"))
                            break
                        if msg_type != protocol.MSG_CELL:
                            raise WorkerProtocolError(
                                f"expected a streamed cell frame, got type "
                                f"{msg_type}"
                            )
                        if payload.get("batch_id") != batch_id:
                            raise WorkerProtocolError(
                                f"cell for batch {payload.get('batch_id')} "
                                f"while streaming batch {batch_id}"
                            )
                        pos = payload.get("pos")
                        if not isinstance(pos, int) \
                                or not 0 <= pos < len(indices) \
                                or pos in streamed:
                            raise WorkerProtocolError(
                                f"batch {batch_id}: bad or duplicate cell "
                                f"position {pos!r}"
                            )
                        now = time.monotonic()
                        controller.observe(
                            max(now - t_prev, 1e-9)
                        )
                        t_prev = now
                        report.ewma_cell_s = controller.ewma_s
                        artifact = _canonicalize(payload.get("artifact"))
                        streamed.add(pos)
                        index = indices[pos]
                        with cond:
                            state.in_flight -= 1
                            report.cells += 1
                            if not filled[index]:
                                filled[index] = True
                                results[index] = artifact
                                out_q.put(("cell", index, artifact))
                            cond.notify_all()
                    if fatal_error is not None:
                        with cond:
                            state.fatal = fatal_error
                            for pos, i in enumerate(indices):
                                if pos not in streamed:
                                    state.in_flight -= 1
                                    state.dead_letters.append(i)
                            cond.notify_all()
                        indices = []
                        break
                    # end-of-batch marker closes the stream and carries
                    # the worker-side cache delta for this batch window
                    payload, nbytes = protocol.expect_frame(
                        sock, protocol.MSG_RESULT
                    )
                    report.bytes_received += nbytes
                    if payload.get("batch_id") != batch_id:
                        raise WorkerProtocolError(
                            f"end-of-batch for {payload.get('batch_id')} "
                            f"while streaming batch {batch_id}"
                        )
                    if payload.get("cells_done") != len(indices):
                        raise WorkerProtocolError(
                            f"batch {batch_id}: worker reports "
                            f"{payload.get('cells_done')} cells done, "
                            f"client streamed {len(indices)}"
                        )
                    delta = payload.get("cache_delta") or {}
                    with cond:
                        report.batches += 1
                        for stats in delta.values():
                            report.cache_hits += stats.get("hits", 0)
                            report.cache_misses += stats.get("misses", 0)
                        cond.notify_all()
                    indices = []
                try:
                    report.bytes_sent += protocol.send_frame(
                        sock, protocol.MSG_BYE, {}
                    )
                except _TRANSPORT_ERRORS:
                    pass  # worker vanished after its last result; nothing lost
                sock.close()
            except _TRANSPORT_ERRORS as exc:
                sock.close()
                with cond:
                    report.alive = False
                    report.error = f"{type(exc).__name__}: {exc}"
                    unstreamed = [
                        i for pos, i in enumerate(indices)
                        if pos not in streamed
                    ]
                    if unstreamed:
                        # dedupe by cell index: cells the dead worker
                        # already streamed are filled and must not be
                        # re-dispatched (no double-yield)
                        report.redispatched_batches += 1
                        for i in unstreamed:
                            self._requeue_or_dead_letter(
                                state, i, attempt_cap
                            )
                    cond.notify_all()
        finally:
            out_q.put(("exit", None, None))
