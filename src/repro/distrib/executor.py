"""Client side of distributed sweeps: shard cells over remote workers.

:class:`DistributedSweepExecutor` drives one sweep session against a
pool of :mod:`repro.distrib.worker` servers:

* **Pull-based scheduling** — one feeder thread per worker dispatches a
  batch only when its worker is idle, so fast workers naturally take
  more of the queue and a slow worker never strands work behind it.
* **Snapshot-once handshake** — each worker receives the parent's
  :func:`repro.cache.snapshot_stores` bundle exactly once per session
  (in ``MSG_HELLO``), not per cell, so remote warm-cache hit rates match
  local ``run_sweep`` workers.
* **Failure containment** — every call has a timeout; a dead or hung
  worker's in-flight batch is re-dispatched onto the remaining pool
  (bounded attempts, so a poison batch cannot ping-pong forever), and
  connection setup retries with backoff.  If the whole pool dies, the
  leftover cells run locally by default (``fallback="local"``) so the
  sweep still completes; ``fallback="error"`` raises instead.
* **Deterministic reassembly** — results are written into their cell's
  original index, so a distributed sweep returns artifacts in cell
  order, byte-identical to a serial ``run_sweep`` over the same cells
  (cell execution is deterministic; re-running a batch elsewhere yields
  the same artifact).

Per-worker accounting (cells, batches, wire bytes, remote cache
hit/miss) is kept in :class:`WorkerReport` objects, exposed on the
executor and via :func:`last_sweep_reports` for the CLI's ``--cache-dir``
stderr report and the ``sweep_distributed`` benchmark metrics.
"""

from __future__ import annotations

import dataclasses
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import repro.cache as _cache
from repro.distrib import protocol
from repro.distrib.endpoints import format_endpoint, parse_endpoints
from repro.errors import DistributedSweepError, WorkerProtocolError

#: transport failures that mark a worker dead and re-dispatch its batch
_TRANSPORT_ERRORS = (
    WorkerProtocolError,
    ConnectionError,
    socket.timeout,
    TimeoutError,
    OSError,
    EOFError,
)


@dataclass
class WorkerReport:
    """What one remote worker contributed to a sweep."""

    endpoint: str
    batches: int = 0
    cells: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: worker-side memo-store hits/misses summed over this session's batches
    cache_hits: int = 0
    cache_misses: int = 0
    redispatched_batches: int = 0
    alive: bool = True
    error: str | None = None

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def wire_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received


@dataclass
class _Batch:
    batch_id: int
    indices: list[int]
    cells: list
    attempts: int = 0


@dataclass
class _SweepState:
    """Shared mutable state guarded by one lock/condition pair."""

    queue: deque = field(default_factory=deque)
    #: batches not yet completed or dead-lettered (drives idle waiting)
    outstanding: int = 0
    dead_letters: list = field(default_factory=list)
    fatal: str | None = None


#: the most recent sweep's per-worker reports (CLI/bench reporting)
_LAST_REPORTS: list[WorkerReport] = []


def last_sweep_reports() -> list[WorkerReport]:
    """Per-worker reports of the most recent distributed sweep."""
    return list(_LAST_REPORTS)


def _canonicalize(obj):
    """Re-intern every string reachable through plain containers.

    Pickling an artifact through the wire and back loses *object
    identity* between equal strings (the worker's artifact mixes strings
    from its unpickled cell copy with strings from its memo stores), so
    a re-pickle on this side would memoize them differently than a
    locally produced artifact — byte-different pickles for semantically
    equal results.  Interning collapses every equal string back to one
    object, which is exactly the sharing a local run has (device ids and
    resource names are single-origin there), restoring pickle-level
    byte-identity between distributed and serial sweeps.
    """
    if isinstance(obj, str):
        return sys.intern(obj)
    if isinstance(obj, dict):
        return {_canonicalize(k): _canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_canonicalize(v) for v in obj]
    if isinstance(obj, tuple):
        return type(obj)(*map(_canonicalize, obj)) if hasattr(obj, "_fields") \
            else tuple(_canonicalize(v) for v in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {
            f.name: _canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return dataclasses.replace(obj, **changes)
    return obj


def _auto_batch_size(n_cells: int, n_workers: int) -> int:
    """Batch small enough for load balance, big enough to amortize frames.

    Four batches per worker keeps the tail short when cell costs vary;
    the cap bounds the cost of re-executing a re-dispatched batch.
    """
    return max(1, min(32, n_cells // (4 * n_workers) or 1))


class DistributedSweepExecutor:
    """Run sweep cells across socket-connected workers (one session).

    Parameters
    ----------
    workers:
        Endpoints: ``"host:port"`` strings (comma-separable) or
        ``(host, port)`` tuples.
    jobs:
        Forwarded to each worker in the handshake as its intra-batch
        parallelism (a worker started with an explicit ``--jobs`` pins
        its own value instead).
    batch_size:
        Cells per dispatched batch (default: auto, ~4 batches/worker).
    call_timeout_s:
        Per-call ceiling on a worker executing one batch; a worker that
        blows it is treated as hung and its batch re-dispatched.
    connect_attempts / connect_backoff_s / connect_timeout_s:
        Connection establishment retries with linear backoff.
    max_redispatch:
        Attempt ceiling per batch (default: pool size + 1); beyond it the
        batch is dead-lettered to the fallback path instead of being
        re-dispatched (a poison batch must not take every worker down).
    fallback:
        ``"local"`` (default) runs cells the pool could not finish in
        this process; ``"error"`` raises
        :class:`~repro.errors.DistributedSweepError` instead.
    """

    def __init__(
        self,
        workers: Iterable[str] | Sequence[tuple[str, int]],
        *,
        jobs: int = 1,
        batch_size: int | None = None,
        call_timeout_s: float = 600.0,
        connect_timeout_s: float = 10.0,
        connect_attempts: int = 3,
        connect_backoff_s: float = 0.25,
        max_redispatch: int | None = None,
        fallback: str = "local",
    ) -> None:
        workers = list(workers)
        if workers and isinstance(workers[0], tuple):
            self.endpoints = [tuple(w) for w in workers]
        else:
            self.endpoints = parse_endpoints(workers)
        if fallback not in ("local", "error"):
            raise DistributedSweepError(
                f"fallback must be 'local' or 'error', got {fallback!r}"
            )
        self.jobs = jobs
        self.batch_size = batch_size
        self.call_timeout_s = call_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.connect_attempts = max(1, connect_attempts)
        self.connect_backoff_s = connect_backoff_s
        self.max_redispatch = max_redispatch
        self.fallback = fallback
        self.reports: list[WorkerReport] = []

    # -- public API ------------------------------------------------------

    def run(self, cells, *, detail: str = "summary", share_cache: bool = True):
        """Execute ``cells`` on the worker pool; artifacts in cell order."""
        from repro.artifact import check_detail

        check_detail(detail)
        cells = list(cells)
        self.reports = [
            WorkerReport(endpoint=format_endpoint(ep)) for ep in self.endpoints
        ]
        global _LAST_REPORTS
        _LAST_REPORTS = self.reports
        if not cells:
            return []

        size = self.batch_size or _auto_batch_size(len(cells), len(self.endpoints))
        state = _SweepState()
        for batch_id, start in enumerate(range(0, len(cells), size)):
            indices = list(range(start, min(start + size, len(cells))))
            state.queue.append(
                _Batch(batch_id, indices, [cells[i] for i in indices])
            )
        state.outstanding = len(state.queue)
        results: list = [None] * len(cells)
        filled = [False] * len(cells)
        snapshot = _cache.snapshot_stores() if share_cache else {}
        cond = threading.Condition()
        attempt_cap = (
            self.max_redispatch
            if self.max_redispatch is not None
            else len(self.endpoints) + 1
        )

        threads = []
        for endpoint, report in zip(self.endpoints, self.reports):
            thread = threading.Thread(
                target=self._drive_worker,
                args=(endpoint, report, state, cond, results, filled,
                      snapshot, detail, attempt_cap),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()

        if state.fatal is not None:
            raise DistributedSweepError(
                f"a worker reported a non-transient cell failure:\n{state.fatal}"
            )
        leftovers = sorted(
            i
            for batch in (list(state.queue) + state.dead_letters)
            for i in batch.indices
            if not filled[i]
        )
        if leftovers:
            dead = [r.endpoint for r in self.reports if not r.alive]
            if self.fallback == "error":
                raise DistributedSweepError(
                    f"{len(leftovers)} cells could not be executed remotely "
                    f"(dead workers: {dead or 'none'})"
                )
            from repro.bench.harness import _run_cell

            print(
                f"[distrib] {len(leftovers)} of {len(cells)} cells fell back "
                f"to local execution (dead workers: {', '.join(dead) or 'none'})",
                file=sys.stderr,
            )
            for i in leftovers:
                results[i] = _run_cell(cells[i], detail)
                filled[i] = True
        missing = filled.count(False)
        if missing:
            raise DistributedSweepError(
                f"internal error: {missing} cells never produced a result"
            )
        return results

    # -- per-worker feeder thread ---------------------------------------

    def _connect(self, endpoint, report, snapshot, detail):
        """Connect + handshake with retry/backoff; returns the socket."""
        last_exc: Exception | None = None
        for attempt in range(self.connect_attempts):
            if attempt:
                time.sleep(self.connect_backoff_s * attempt)
            try:
                sock = socket.create_connection(
                    endpoint, timeout=self.connect_timeout_s
                )
            except OSError as exc:
                last_exc = exc
                continue
            try:
                sock.settimeout(self.call_timeout_s)
                report.bytes_sent += protocol.send_frame(
                    sock, protocol.MSG_HELLO, {
                        "protocol": protocol.PROTOCOL_VERSION,
                        "detail": detail,
                        "jobs": self.jobs,
                        "snapshot": snapshot,
                    },
                )
                _welcome, nbytes = protocol.expect_frame(
                    sock, protocol.MSG_WELCOME
                )
                report.bytes_received += nbytes
                return sock
            except _TRANSPORT_ERRORS as exc:
                last_exc = exc
                sock.close()
        raise DistributedSweepError(
            f"could not establish a session with {report.endpoint} after "
            f"{self.connect_attempts} attempts: {last_exc}"
        )

    def _drive_worker(
        self, endpoint, report, state, cond, results, filled,
        snapshot, detail, attempt_cap,
    ) -> None:
        try:
            sock = self._connect(endpoint, report, snapshot, detail)
        except DistributedSweepError as exc:
            with cond:
                report.alive = False
                report.error = str(exc)
                cond.notify_all()
            return
        batch: _Batch | None = None
        try:
            while True:
                with cond:
                    batch = None
                    while state.fatal is None:
                        if state.queue:
                            batch = state.queue.popleft()
                            break
                        if state.outstanding == 0:
                            break
                        # another worker holds the remaining batches; wait
                        # in case one is re-dispatched our way
                        cond.wait(0.05)
                    if batch is None:
                        break
                batch.attempts += 1
                report.bytes_sent += protocol.send_frame(
                    sock, protocol.MSG_BATCH, {
                        "batch_id": batch.batch_id,
                        "cells": batch.cells,
                    },
                )
                msg_type, payload, nbytes = protocol.recv_frame(sock)
                report.bytes_received += nbytes
                if msg_type == protocol.MSG_ERROR:
                    with cond:
                        state.fatal = str(payload.get("error"))
                        state.dead_letters.append(batch)
                        state.outstanding -= 1
                        cond.notify_all()
                    batch = None
                    break
                if msg_type != protocol.MSG_RESULT:
                    raise WorkerProtocolError(
                        f"expected a result frame, got type {msg_type}"
                    )
                if payload.get("batch_id") != batch.batch_id:
                    raise WorkerProtocolError(
                        f"result for batch {payload.get('batch_id')} while "
                        f"waiting on batch {batch.batch_id}"
                    )
                artifacts = payload.get("artifacts") or []
                if len(artifacts) != len(batch.indices):
                    raise WorkerProtocolError(
                        f"batch {batch.batch_id}: {len(artifacts)} artifacts "
                        f"for {len(batch.indices)} cells"
                    )
                delta = payload.get("cache_delta") or {}
                artifacts = [_canonicalize(a) for a in artifacts]
                with cond:
                    for index, artifact in zip(batch.indices, artifacts):
                        results[index] = artifact
                        filled[index] = True
                    state.outstanding -= 1
                    report.batches += 1
                    report.cells += len(batch.indices)
                    for stats in delta.values():
                        report.cache_hits += stats.get("hits", 0)
                        report.cache_misses += stats.get("misses", 0)
                    cond.notify_all()
                batch = None
            try:
                report.bytes_sent += protocol.send_frame(
                    sock, protocol.MSG_BYE, {}
                )
            except _TRANSPORT_ERRORS:
                pass  # worker vanished after its last result; nothing lost
            sock.close()
        except _TRANSPORT_ERRORS as exc:
            sock.close()
            with cond:
                report.alive = False
                report.error = f"{type(exc).__name__}: {exc}"
                if batch is not None:
                    report.redispatched_batches += 1
                    if batch.attempts >= attempt_cap:
                        state.dead_letters.append(batch)
                        state.outstanding -= 1
                    else:
                        # back of the queue: surviving workers finish their
                        # current work before picking up the orphan
                        state.queue.append(batch)
                cond.notify_all()
