"""Region-based task dependence analysis (the OmpSs dependency graph).

Given the expanded task instances in program order, this module adds the
edges the OmpSs runtime would derive from the user's ``in``/``out``/``inout``
annotations:

* **RAW** — a read depends on every earlier overlapping write,
* **WAW** — a write depends on every earlier overlapping write,
* **WAR** — a write depends on every earlier overlapping read.

``taskwait`` barriers join all in-flight instances and anchor everything
after them; analysis state is reset at each barrier.

Chunks of the *same* invocation never conflict: the partitioned write ranges
are disjoint by construction, and FULL-pattern accesses are read-only
(enforced by :class:`~repro.runtime.kernels.AccessSpec`).

Two builders are provided:

* :func:`build_dependences` — the production **frontier** builder.  Per
  array it tracks only the *last writer* of every element (a sorted
  disjoint interval index) plus the *readers since that write* (pruned
  whenever a write lands), so edge construction is near-linear in the
  instance count even inside a single barrier window.  The resulting
  graph is a transitive reduction-compatible subset of the full edge
  set: every omitted edge is implied by a path, so reachability — and
  therefore executor readiness times and makespans — are unchanged.
* :func:`build_dependences_reference` — the original full-history scan
  (O(n²) between barriers), kept as the oracle for differential tests
  (``tests/runtime/test_dependence_fastpath.py``).

See ``docs/performance.md`` for the frontier algorithm and its bounds.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.runtime.graph import InstanceKind, TaskGraph
from repro.runtime.regions import AccessMode, Region


@dataclass(slots=True)
class _Access:
    instance_id: int
    invocation_id: int
    region: Region
    mode: AccessMode


def _add_edge(graph: TaskGraph, src: int, dst: int) -> None:
    if src == dst:
        return
    graph.instances[dst].deps.add(src)
    graph.instances[src].succs.add(dst)


def build_dependences_reference(graph: TaskGraph) -> TaskGraph:
    """Populate ``deps``/``succs`` by scanning the full access history.

    This is the original quadratic builder: every new access is checked
    against *every* earlier access of the same array since the last
    barrier.  It adds one direct edge per conflicting pair, which makes it
    the most explicit statement of the dependence semantics — and the
    oracle the frontier builder is differential-tested against.  Returns
    the same graph for chaining; existing edges are preserved.
    """
    # Per-array log of accesses since the last barrier.
    history: dict[str, list[_Access]] = {}
    in_flight: list[int] = []  # compute instances since the last barrier
    after_barrier: int | None = None  # the most recent barrier, if any

    for inst in graph.instances:
        if inst.kind is InstanceKind.BARRIER:
            for prior in in_flight:
                _add_edge(graph, prior, inst.instance_id)
            if after_barrier is not None and not in_flight:
                # chain consecutive barriers so ordering is kept
                _add_edge(graph, after_barrier, inst.instance_id)
            history.clear()
            in_flight.clear()
            after_barrier = inst.instance_id
            continue

        if after_barrier is not None:
            _add_edge(graph, after_barrier, inst.instance_id)

        for region, mode in inst.regions():
            assert isinstance(mode, AccessMode)
            log = history.setdefault(region.array, [])
            for prev in log:
                if prev.invocation_id == inst.invocation.invocation_id:
                    # chunks of one invocation are independent by construction
                    continue
                if not prev.region.overlaps(region):
                    continue
                raw = mode.reads and prev.mode.writes
                waw = mode.writes and prev.mode.writes
                war = mode.writes and prev.mode.reads
                if raw or waw or war:
                    _add_edge(graph, prev.instance_id, inst.instance_id)
            log.append(
                _Access(
                    instance_id=inst.instance_id,
                    invocation_id=inst.invocation.invocation_id,
                    region=region,
                    mode=mode,
                )
            )
        in_flight.append(inst.instance_id)

    return graph


class _ReaderIndex:
    """Interval-indexed readers-since-last-write of one array.

    The original frontier kept readers as a flat ``(start, end, id)``
    list, so every WAR query scanned *all* live readers — linear per
    write, quadratic over a read-heavy many-chunk barrier window.  This
    index keeps a sorted list of disjoint half-open intervals instead,
    each mapped to the tuple of reader ids covering it, so an overlap
    query is a bisect plus a walk over exactly the overlapped run —
    logarithmic in the number of segments plus output size.

    ``add`` splits the covered segments and extends their id tuples
    (coalescing equal neighbours to bound growth); ``subtract`` carves a
    committed write's range out, keeping only reads a future write could
    still WAR-depend on.  Both maintain the disjoint/sorted invariant, so
    ``starts`` and ``ends`` stay parallel bisectable arrays.
    """

    __slots__ = ("starts", "ends", "ids")

    def __init__(self) -> None:
        self.starts: list[int] = []
        self.ends: list[int] = []
        self.ids: list[tuple[int, ...]] = []

    def _overlap_range(self, start: int, end: int) -> tuple[int, int]:
        """Index range of segments overlapping ``[start, end)``."""
        lo = bisect_right(self.ends, start)
        hi = lo
        n = len(self.starts)
        while hi < n and self.starts[hi] < end:
            hi += 1
        return lo, hi

    def overlapping(self, start: int, end: int) -> list[int]:
        """Reader ids with any live read overlapping ``[start, end)``.

        Deduplicated in first-read order (a reader may span several
        segments), matching the flat list's one-entry-per-commit order.
        """
        lo, hi = self._overlap_range(start, end)
        if lo == hi:
            return []
        if hi - lo == 1:
            return list(self.ids[lo])
        seen: dict[int, None] = {}
        for i in range(lo, hi):
            for rid in self.ids[i]:
                seen.setdefault(rid, None)
        return list(seen)

    def add(self, start: int, end: int, instance_id: int) -> None:
        """Record ``instance_id`` as a live reader of ``[start, end)``."""
        lo, hi = self._overlap_range(start, end)
        starts: list[int] = []
        ends: list[int] = []
        ids: list[tuple[int, ...]] = []

        def emit(s: int, e: int, owner: tuple[int, ...]) -> None:
            if s >= e:
                return
            if ids and ids[-1] == owner and ends[-1] == s:
                ends[-1] = e  # coalesce equal neighbours
            else:
                starts.append(s)
                ends.append(e)
                ids.append(owner)

        cursor = start
        for i in range(lo, hi):
            s, e, owner = self.starts[i], self.ends[i], self.ids[i]
            if cursor < s:
                emit(cursor, s, (instance_id,))
                cursor = s
            # the overlapped part of this segment gains the new reader
            split_lo = max(s, start)
            split_hi = min(e, end)
            emit(s, split_lo, owner)
            if instance_id in owner:
                emit(split_lo, split_hi, owner)
            else:
                emit(split_lo, split_hi, owner + (instance_id,))
            emit(split_hi, e, owner)
            cursor = max(cursor, split_hi)
        emit(cursor, end, (instance_id,))
        self.starts[lo:hi] = starts
        self.ends[lo:hi] = ends
        self.ids[lo:hi] = ids

    def subtract(self, start: int, end: int) -> None:
        """Drop all reads of ``[start, end)`` (a write superseded them)."""
        lo, hi = self._overlap_range(start, end)
        if lo == hi:
            return
        starts: list[int] = []
        ends: list[int] = []
        ids: list[tuple[int, ...]] = []
        for i in range(lo, hi):
            s, e, owner = self.starts[i], self.ends[i], self.ids[i]
            if s < start:
                starts.append(s)
                ends.append(start)
                ids.append(owner)
            if e > end:
                starts.append(end)
                ends.append(e)
                ids.append(owner)
        self.starts[lo:hi] = starts
        self.ends[lo:hi] = ends
        self.ids[lo:hi] = ids


class _ArrayFrontier:
    """Last-writer interval index + reader interval index of one array.

    The writer frontier is a sorted list of disjoint half-open intervals,
    each owned by the instance whose write most recently covered it;
    overlap queries are a bisect plus a walk over the overlapped run.
    Readers since the last write live in a :class:`_ReaderIndex` with the
    same interval discipline, so WAR queries are logarithmic too
    (ROADMAP item: interval tree for read-heavy many-chunk programs).
    """

    __slots__ = ("wstarts", "wends", "wids", "readers")

    def __init__(self) -> None:
        self.wstarts: list[int] = []
        self.wends: list[int] = []
        self.wids: list[int] = []
        self.readers = _ReaderIndex()

    def _overlap_range(self, start: int, end: int) -> tuple[int, int]:
        """Index range of writer entries overlapping ``[start, end)``."""
        # entries are disjoint and sorted, so both starts and ends are
        # sorted: the overlapped run begins at the first entry whose end
        # exceeds ``start`` and continues while entry.start < end.
        lo = bisect_right(self.wends, start)
        hi = lo
        n = len(self.wstarts)
        while hi < n and self.wstarts[hi] < end:
            hi += 1
        return lo, hi

    def writers_overlapping(self, start: int, end: int) -> list[int]:
        lo, hi = self._overlap_range(start, end)
        return self.wids[lo:hi]

    def readers_overlapping(self, start: int, end: int) -> list[int]:
        return self.readers.overlapping(start, end)

    def commit_write(self, start: int, end: int, instance_id: int) -> None:
        """Make ``instance_id`` the last writer of ``[start, end)``."""
        self.readers.subtract(start, end)
        lo, hi = self._overlap_range(start, end)
        starts: list[int] = []
        ends: list[int] = []
        ids: list[int] = []
        if lo < hi and self.wstarts[lo] < start:
            starts.append(self.wstarts[lo])
            ends.append(start)
            ids.append(self.wids[lo])
        starts.append(start)
        ends.append(end)
        ids.append(instance_id)
        if lo < hi and self.wends[hi - 1] > end:
            starts.append(end)
            ends.append(self.wends[hi - 1])
            ids.append(self.wids[hi - 1])
        self.wstarts[lo:hi] = starts
        self.wends[lo:hi] = ends
        self.wids[lo:hi] = ids

    def commit_read(self, start: int, end: int, instance_id: int) -> None:
        self.readers.add(start, end, instance_id)


def build_dependences(graph: TaskGraph) -> TaskGraph:
    """Populate ``deps``/``succs`` of every instance in ``graph`` in place.

    Frontier fast path: equivalent reachability to
    :func:`build_dependences_reference` (hence identical executor
    behaviour), but near-linear in the instance count — a new access only
    consults the last writer(s) of its range and the reads since, never
    the full history.  Returns the same graph for chaining.  Existing
    edges are preserved (strategies may add explicit edges before calling
    this).
    """
    frontiers: dict[str, _ArrayFrontier] = {}
    in_flight: list[int] = []
    after_barrier: int | None = None

    instances = graph.instances
    total = len(instances)
    i = 0
    while i < total:
        inst = instances[i]
        if inst.kind is InstanceKind.BARRIER:
            for prior in in_flight:
                _add_edge(graph, prior, inst.instance_id)
            if after_barrier is not None and not in_flight:
                _add_edge(graph, after_barrier, inst.instance_id)
            frontiers.clear()
            in_flight.clear()
            after_barrier = inst.instance_id
            i += 1
            continue

        # Chunks of one invocation never conflict, so the whole batch of
        # consecutive instances of this invocation queries the frontier
        # first and commits its own accesses only afterwards.
        inv_id = inst.invocation.invocation_id
        j = i
        writes: list[tuple[_ArrayFrontier, int, int, int]] = []
        reads: list[tuple[_ArrayFrontier, int, int, int]] = []
        while j < total:
            member = instances[j]
            if (
                member.kind is not InstanceKind.COMPUTE
                or member.invocation.invocation_id != inv_id
            ):
                break
            member_id = member.instance_id
            if after_barrier is not None:
                _add_edge(graph, after_barrier, member_id)
            for region, mode in member.regions():
                assert isinstance(mode, AccessMode)
                if region.end <= region.start:  # empty PREFIX chunk
                    continue
                frontier = frontiers.get(region.array)
                if frontier is None:
                    frontier = frontiers[region.array] = _ArrayFrontier()
                # RAW and WAW both look at the write frontier
                for src in frontier.writers_overlapping(region.start, region.end):
                    _add_edge(graph, src, member_id)
                if mode.writes:
                    for src in frontier.readers_overlapping(
                        region.start, region.end
                    ):
                        _add_edge(graph, src, member_id)  # WAR
                    writes.append(
                        (frontier, region.start, region.end, member_id)
                    )
                if mode.reads:
                    reads.append(
                        (frontier, region.start, region.end, member_id)
                    )
            in_flight.append(member_id)
            j += 1
        # writes first, then reads: a read of this invocation survives a
        # sibling chunk's write to the same range, exactly as the
        # reference builder's same-invocation skip behaves.
        for frontier, start, end, member_id in writes:
            frontier.commit_write(start, end, member_id)
        for frontier, start, end, member_id in reads:
            frontier.commit_read(start, end, member_id)
        i = j

    return graph


def dependence_chains(graph: TaskGraph) -> dict[int, int]:
    """Assign each compute instance a *chain id* for locality scheduling.

    DP-Dep keeps instances of the same dependence chain on the same device
    to minimize transfers.  A chain is the connected component an instance
    belongs to when following single-predecessor links: an instance joins
    the chain of its lowest-id compute dependence; instances without
    compute dependences start new chains.  Only the minimum matters, so
    the dependence set is scanned once instead of fully sorted.
    """
    chains: dict[int, int] = {}
    next_chain = 0
    for inst in graph.instances:
        if inst.kind is not InstanceKind.COMPUTE:
            continue
        # min compute dep without sorting; deps always point backwards in
        # program order, so every compute dep is already in ``chains``.
        best = -1
        for dep in inst.deps:
            if (best < 0 or dep < best) and dep in chains:
                best = dep
        if best < 0:
            chain = next_chain
            next_chain += 1
        else:
            chain = chains[best]
        chains[inst.instance_id] = chain
    return chains
