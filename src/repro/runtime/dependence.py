"""Region-based task dependence analysis (the OmpSs dependency graph).

Given the expanded task instances in program order, this module adds the
edges the OmpSs runtime would derive from the user's ``in``/``out``/``inout``
annotations:

* **RAW** — a read depends on every earlier overlapping write,
* **WAW** — a write depends on every earlier overlapping write,
* **WAR** — a write depends on every earlier overlapping read.

``taskwait`` barriers join all in-flight instances and anchor everything
after them; analysis state is reset at each barrier, keeping the edge count
linear in practice for the paper's loop-structured workloads.

Chunks of the *same* invocation never conflict: the partitioned write ranges
are disjoint by construction, and FULL-pattern accesses are read-only
(enforced by :class:`~repro.runtime.kernels.AccessSpec`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.graph import InstanceKind, TaskGraph
from repro.runtime.regions import AccessMode, Region


@dataclass(slots=True)
class _Access:
    instance_id: int
    invocation_id: int
    region: Region
    mode: AccessMode


def _add_edge(graph: TaskGraph, src: int, dst: int) -> None:
    if src == dst:
        return
    graph.instances[dst].deps.add(src)
    graph.instances[src].succs.add(dst)


def build_dependences(graph: TaskGraph) -> TaskGraph:
    """Populate ``deps``/``succs`` of every instance in ``graph`` in place.

    Returns the same graph for chaining.  Existing edges are preserved
    (strategies may add explicit edges before calling this).
    """
    # Per-array log of accesses since the last barrier.
    history: dict[str, list[_Access]] = {}
    in_flight: list[int] = []  # compute instances since the last barrier
    after_barrier: int | None = None  # the most recent barrier, if any

    for inst in graph.instances:
        if inst.kind is InstanceKind.BARRIER:
            for prior in in_flight:
                _add_edge(graph, prior, inst.instance_id)
            if after_barrier is not None and not in_flight:
                # chain consecutive barriers so ordering is kept
                _add_edge(graph, after_barrier, inst.instance_id)
            history.clear()
            in_flight.clear()
            after_barrier = inst.instance_id
            continue

        if after_barrier is not None:
            _add_edge(graph, after_barrier, inst.instance_id)

        for region, mode in inst.regions():
            assert isinstance(mode, AccessMode)
            log = history.setdefault(region.array, [])
            for prev in log:
                if prev.invocation_id == inst.invocation.invocation_id:
                    # chunks of one invocation are independent by construction
                    continue
                if not prev.region.overlaps(region):
                    continue
                raw = mode.reads and prev.mode.writes
                waw = mode.writes and prev.mode.writes
                war = mode.writes and prev.mode.reads
                if raw or waw or war:
                    _add_edge(graph, prev.instance_id, inst.instance_id)
            log.append(
                _Access(
                    instance_id=inst.instance_id,
                    invocation_id=inst.invocation.invocation_id,
                    region=region,
                    mode=mode,
                )
            )
        in_flight.append(inst.instance_id)

    return graph


def dependence_chains(graph: TaskGraph) -> dict[int, int]:
    """Assign each compute instance a *chain id* for locality scheduling.

    DP-Dep keeps instances of the same dependence chain on the same device
    to minimize transfers.  A chain is the connected component an instance
    belongs to when following single-predecessor links: an instance joins
    the chain of its first compute dependence; instances without compute
    dependences start new chains.
    """
    chains: dict[int, int] = {}
    next_chain = 0
    for inst in graph.instances:
        if inst.kind is not InstanceKind.COMPUTE:
            continue
        chain = None
        for dep in sorted(inst.deps):
            dep_inst = graph.instances[dep]
            if dep_inst.kind is InstanceKind.COMPUTE and dep in chains:
                chain = chains[dep]
                break
        if chain is None:
            chain = next_chain
            next_chain += 1
        chains[inst.instance_id] = chain
    return chains
