"""Random valid programs, for differential and property-based testing.

The generator builds structurally valid :class:`~repro.runtime.graph.Program`
objects with a controlled shape — kernel count, flow type, loop depth, halo
reads, FULL reads, sync markers — plus NumPy kernel bodies whose semantics
match their declared accesses exactly.  Tests use it to check, over *many*
program shapes, that:

* dependence analysis always yields an acyclic, orderable graph,
* functional chunked execution equals sequential execution,
* the simulated executor conserves work and terminates,
* classification is stable under re-derivation.

Kernel bodies are simple affine updates (``dst = a*src + b`` elementwise,
plus optional halo averaging and FULL-array reductions) so results are
deterministic and cheaply comparable.
"""

from __future__ import annotations

import dataclasses
import numpy as np

from repro.platform.device import DeviceKind
from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec


@dataclasses.dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters of generated programs."""

    n: int = 256
    max_kernels: int = 4
    max_iterations: int = 3
    p_sync: float = 0.3
    p_halo: float = 0.3
    p_full_read: float = 0.3
    p_inout: float = 0.3
    max_arrays: int = 5


def _affine_impl(arrays, lo, hi, n, *, dsts, srcs, full_srcs, halo, coeff):
    """dst[i] = coeff * (mean of sources at i, halo-averaged) + reductions."""
    acc = np.zeros(hi - lo, dtype=np.float64)
    for name in srcs:
        src = arrays[name].astype(np.float64)
        if halo:
            left = src[np.maximum(np.arange(lo, hi) - 1, 0)]
            right = src[np.minimum(np.arange(lo, hi) + 1, n - 1)]
            acc += (left + src[lo:hi] + right) / 3.0
        else:
            acc += src[lo:hi]
    bias = 0.0
    for name in full_srcs:
        # a FULL read: a global reduction folded into every element
        bias += float(arrays[name].astype(np.float64).mean())
    for name in dsts:
        base = arrays[name].astype(np.float64)[lo:hi]
        arrays[name][lo:hi] = (
            coeff * acc + bias + 0.5 * base
        ).astype(arrays[name].dtype)


def random_program(
    rng: np.random.Generator,
    config: GeneratorConfig | None = None,
) -> Program:
    """Generate one structurally valid program with NumPy bodies."""
    cfg = config or GeneratorConfig()
    n = cfg.n
    n_arrays = int(rng.integers(2, cfg.max_arrays + 1))
    specs = {
        f"a{i}": ArraySpec(f"a{i}", n, 8) for i in range(n_arrays)
    }
    names = list(specs)
    n_kernels = int(rng.integers(1, cfg.max_kernels + 1))
    iterations = int(rng.integers(1, cfg.max_iterations + 1))
    sync = bool(rng.random() < cfg.p_sync)

    kernels = []
    for k in range(n_kernels):
        rng.shuffle(names)
        n_src = int(rng.integers(1, min(3, len(names)) + 1))
        srcs = names[:n_src]
        remaining = [x for x in names if x not in srcs]
        dst = remaining[0] if remaining and rng.random() > cfg.p_inout \
            else srcs[0]
        halo = bool(rng.random() < cfg.p_halo)
        full_srcs = []
        if rng.random() < cfg.p_full_read and len(names) > n_src:
            candidate = [x for x in names if x != dst and x not in srcs]
            if candidate:
                full_srcs = [candidate[0]]

        accesses = []
        for s in srcs:
            if s == dst:
                continue
            accesses.append(
                AccessSpec(specs[s], AccessMode.IN, halo=1 if halo else 0)
            )
        for f in full_srcs:
            accesses.append(
                AccessSpec(specs[f], AccessMode.IN, AccessPattern.FULL)
            )
        accesses.append(
            AccessSpec(
                specs[dst],
                AccessMode.INOUT if dst in srcs else AccessMode.OUT,
            )
        )
        # halo self-update would race within an invocation; drop halo when
        # the destination is also a source
        effective_halo = halo and dst not in srcs
        kernels.append(
            Kernel(
                f"k{k}",
                KernelCostModel(
                    flops_per_elem=float(rng.integers(1, 20)),
                    mem_bytes_per_elem=float(rng.integers(4, 32)),
                    compute_eff={DeviceKind.CPU: 0.5, DeviceKind.GPU: 0.5},
                    mem_eff={DeviceKind.CPU: 0.6, DeviceKind.GPU: 0.6},
                ),
                tuple(
                    dataclasses.replace(a, halo=0)
                    if (not effective_halo and a.halo) else a
                    for a in accesses
                ),
                impl=_affine_impl,
                params={
                    "dsts": [dst],
                    "srcs": [s for s in srcs if s != dst],
                    "full_srcs": full_srcs,
                    "halo": effective_halo,
                    "coeff": float(rng.uniform(0.1, 1.0)),
                },
            )
        )

    invocations = []
    for it in range(iterations):
        for kernel in kernels:
            invocations.append(
                KernelInvocation(
                    invocation_id=len(invocations),
                    kernel=kernel,
                    n=n,
                    iteration=it,
                    sync_after=sync,
                )
            )
    return Program(invocations=invocations, arrays=specs)


def random_arrays(
    program: Program, rng: np.random.Generator
) -> dict[str, np.ndarray]:
    """Input data matching a generated program's array specs."""
    return {
        name: rng.uniform(-1.0, 1.0, spec.n_elems)
        for name, spec in program.arrays.items()
    }
