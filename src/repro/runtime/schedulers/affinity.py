"""Affinity/locality-aware dynamic scheduling (the DP-Aff policy).

Models the locality-aware work-stealing of Bleuse et al. (XKaapi on
CPU+GPU platforms): every device keeps working on the data it already
holds, and only *steals* remote-resident work when it would otherwise go
idle.  Where DP-Dep tracks a coarse per-chain device binding, this policy
tracks **region residency** — which element ranges of which arrays each
device currently holds — and scores every ready instance by how many of
its input bytes are already local to a device.

The policy stays deliberately capability-blind, like DP-Dep: no rate
estimates, only idle resources take work.  The decision rule per idle
resource (accelerator helper threads first, as in the breadth-first
scheduler) is a three-tier preference:

1. the ready instance with the **most input bytes resident** on the
   resource's device (ties: creation order);
2. otherwise the oldest *fresh* instance — one whose inputs are not
   resident anywhere yet (cold data starts at the host and costs the
   same wherever it is first pulled);
3. otherwise **steal** the oldest instance whose data lives on another
   device — paying the transfer beats idling.

Residency is updated at assignment time: written ranges become exclusive
to the executing device (other copies are invalidated), read ranges are
replicated onto it.  Taskwait barriers are not modelled as flushes here —
residency is a scheduling *hint*, and the simulator's coherence directory
independently charges whatever transfers really occur.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.graph import TaskGraph, TaskInstance
from repro.runtime.kernels import AccessPattern
from repro.runtime.regions import IntervalSet
from repro.runtime.schedulers.base import Scheduler, SchedulingContext


class AffinityScheduler(Scheduler):
    """Region-residency work-stealing with a local-first preference."""

    name = "affinity"
    dynamic = True

    def __init__(self) -> None:
        #: device id -> array name -> resident element ranges
        self._resident: dict[str, dict[str, IntervalSet]] = {}

    def start(self, graph: TaskGraph, ctx: SchedulingContext) -> None:
        self._resident = {}
        for resource in ctx.resources:
            self._resident.setdefault(resource.device.device_id, {})

    # -- residency bookkeeping --------------------------------------------

    def _affinity_bytes(self, inst: TaskInstance, device_id: str) -> int:
        """Input bytes of ``inst`` currently resident on ``device_id``.

        FULL-pattern reads are excluded: they are fetched once per device,
        not per chunk, so they would give every chunk of a kernel the same
        affinity everywhere the kernel has run — pure noise.
        """
        arrays = self._resident.get(device_id)
        if not arrays:
            return 0
        total = 0
        for acc in inst.kernel.accesses:
            if not acc.mode.reads or acc.pattern is AccessPattern.FULL:
                continue
            region = acc.region(inst.lo, inst.hi)
            resident = arrays.get(region.array)
            if resident is not None:
                held = resident.intersect(region.start, region.end).total
                total += held * acc.array.elem_bytes
        return total

    def _record_assignment(self, inst: TaskInstance, device_id: str) -> None:
        """Writes become exclusive to ``device_id``; reads replicate there."""
        home = self._resident.setdefault(device_id, {})
        for acc in inst.kernel.accesses:
            if acc.pattern is AccessPattern.FULL:
                continue
            region = acc.region(inst.lo, inst.hi)
            if acc.mode.writes:
                for other_id, arrays in self._resident.items():
                    if other_id == device_id:
                        continue
                    resident = arrays.get(region.array)
                    if resident is not None:
                        resident.remove(region.start, region.end)
            if acc.mode.reads or acc.mode.writes:
                target = home.get(region.array)
                if target is None:
                    target = home[region.array] = IntervalSet()
                target.add(region.start, region.end)

    # -- policy ------------------------------------------------------------

    def assign(
        self, ready: Sequence[TaskInstance], ctx: SchedulingContext
    ) -> list[tuple[TaskInstance, str]]:
        out: list[tuple[TaskInstance, str]] = []
        # accelerator helper threads serve the ready queue first, matching
        # the breadth-first scheduler's fixed registration order
        idle = sorted(
            ctx.idle_resources(), key=lambda r: (not r.is_accelerator,)
        )
        taken: set[int] = set()
        for resource in idle:
            device_id = resource.device.device_id
            local_best: TaskInstance | None = None
            local_bytes = 0
            fresh: TaskInstance | None = None
            stolen: TaskInstance | None = None
            for inst in ready:  # creation order — first hit wins ties
                if inst.instance_id in taken:
                    continue
                here = self._affinity_bytes(inst, device_id)
                if here > local_bytes:
                    local_best, local_bytes = inst, here
                    continue
                if local_best is not None:
                    continue
                if fresh is None or stolen is None:
                    anywhere = any(
                        self._affinity_bytes(inst, other) > 0
                        for other in self._resident
                        if other != device_id
                    )
                    if not anywhere and fresh is None:
                        fresh = inst
                    elif anywhere and stolen is None:
                        stolen = inst
            choice = local_best or fresh or stolen
            if choice is None:
                continue
            taken.add(choice.instance_id)
            self._record_assignment(choice, device_id)
            out.append((choice, resource.resource_id))
        return out
