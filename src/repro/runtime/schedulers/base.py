"""Scheduler interface and the trivial scheduler for static plans."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import SchedulingError
from repro.platform.topology import ComputeResource
from repro.runtime.graph import TaskGraph, TaskInstance


@dataclass
class SchedulingContext:
    """The executor-side state a scheduler may inspect when assigning work.

    Attributes
    ----------
    now:
        Current virtual time.
    resources:
        All compute resources of the run.
    inflight:
        Per-resource count of dispatched-but-unfinished instances; a
        resource with ``inflight == 0`` is idle.
    platform:
        The platform being executed on (for link-cost introspection);
        ``None`` only in hand-built test contexts.
    """

    now: float
    resources: Sequence[ComputeResource]
    inflight: dict[str, int]
    platform: "object | None" = None

    def idle_resources(self) -> list[ComputeResource]:
        """Resources with no running, queued, or in-flight work."""
        return [r for r in self.resources if self.inflight.get(r.resource_id, 0) == 0]

    def resource(self, resource_id: str) -> ComputeResource:
        for r in self.resources:
            if r.resource_id == resource_id:
                return r
        raise SchedulingError(f"unknown resource {resource_id!r}")


class Scheduler:
    """Decides where unpinned ready task instances execute.

    The executor calls :meth:`assign` at every decision point (instances
    became ready or a resource went idle) with the current ready set in
    creation order.  The scheduler returns ``(instance, resource_id)``
    pairs to dispatch now; instances it leaves out stay in the ready set
    for the next decision point.

    ``dynamic`` marks policies that take per-instance decisions at runtime;
    the executor charges them the dynamic scheduling overhead the paper
    attributes to dynamic partitioning.
    """

    name: str = "base"
    dynamic: bool = True

    def start(self, graph: TaskGraph, ctx: SchedulingContext) -> None:
        """Called once before execution begins."""

    def assign(
        self, ready: Sequence[TaskInstance], ctx: SchedulingContext
    ) -> list[tuple[TaskInstance, str]]:
        raise NotImplementedError

    def on_complete(
        self,
        instance: TaskInstance,
        resource_id: str,
        *,
        compute_time: float,
        transfer_time: float,
    ) -> None:
        """Called when an instance finishes (for online estimate updates)."""


class StaticScheduler(Scheduler):
    """Dispatches pinned instances; used by all SP-* strategies.

    Every instance must carry a resource or device pin.  Device-pinned
    instances go to the device's least-loaded resource.  Instances are
    dispatched immediately when ready — the simulated resources serialize
    FIFO, matching a statically partitioned program where each device
    simply works through its own fixed share.
    """

    name = "static"
    dynamic = False

    def __init__(self) -> None:
        self._rr: dict[str, int] = {}

    def assign(
        self, ready: Sequence[TaskInstance], ctx: SchedulingContext
    ) -> list[tuple[TaskInstance, str]]:
        out: list[tuple[TaskInstance, str]] = []
        for inst in ready:
            if inst.pinned_resource is not None:
                out.append((inst, inst.pinned_resource))
            elif inst.pinned_device is not None:
                out.append((inst, self._pick(inst.pinned_device, ctx)))
            else:
                raise SchedulingError(
                    f"static scheduler got unpinned instance {inst.label()}"
                )
        return out

    def _pick(self, device_id: str, ctx: SchedulingContext) -> str:
        candidates = [
            r for r in ctx.resources if r.device.device_id == device_id
        ]
        if not candidates:
            raise SchedulingError(f"no resources on device {device_id!r}")
        # least in-flight work, round-robin among ties
        start = self._rr.get(device_id, 0)
        best: ComputeResource | None = None
        best_load = None
        for i in range(len(candidates)):
            r = candidates[(start + i) % len(candidates)]
            load = ctx.inflight.get(r.resource_id, 0)
            if best_load is None or load < best_load:
                best, best_load = r, load
        assert best is not None
        self._rr[device_id] = (start + 1) % len(candidates)
        return best.resource_id


def resources_of_kind(
    resources: Sequence[ComputeResource], predicate: Callable[[ComputeResource], bool]
) -> list[ComputeResource]:
    """Filter helper shared by the dynamic schedulers."""
    return [r for r in resources if predicate(r)]
