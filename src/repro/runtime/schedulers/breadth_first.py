"""Breadth-first, dependence-chain-affine scheduling (the DP-Dep policy).

This reproduces OmpSs' default *breadth-first* scheduler as the paper uses
it:

* ready task instances are served FIFO in creation order;
* only **idle** resources take work (no estimates, no queueing ahead);
* an instance whose dependence chain has already executed somewhere is kept
  on that *device* to avoid data transfers ("DP-Dep keeps tracking the data
  dependency chain to assign partitions that belong to the same chain to
  the same device");
* the policy is deliberately oblivious to device capability — the source of
  the workload imbalance the paper observes (the GPU ends up with one of
  ``m`` instances in MatrixMul).
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.dependence import dependence_chains
from repro.runtime.graph import TaskGraph, TaskInstance
from repro.runtime.schedulers.base import Scheduler, SchedulingContext


class BreadthFirstScheduler(Scheduler):
    """FIFO self-scheduling with dependence-chain device affinity."""

    name = "breadth-first"
    dynamic = True

    def __init__(self) -> None:
        self._chains: dict[int, int] = {}
        #: chain id -> device id where the chain started executing
        self._chain_device: dict[int, str] = {}

    def start(self, graph: TaskGraph, ctx: SchedulingContext) -> None:
        self._chains = dependence_chains(graph)
        self._chain_device.clear()

    def assign(
        self, ready: Sequence[TaskInstance], ctx: SchedulingContext
    ) -> list[tuple[TaskInstance, str]]:
        out: list[tuple[TaskInstance, str]] = []
        # accelerator helper threads register before the SMP worker team,
        # so they serve the ready queue first — a fixed, capability-blind
        # order; with the paper's m instances over m threads + 1 GPU this
        # leaves the GPU exactly one instance ("only one task instance is
        # assigned to the GPU and the rest to the CPU").
        idle = sorted(
            ctx.idle_resources(), key=lambda r: (not r.is_accelerator,)
        )
        taken: set[int] = set()
        for resource in idle:
            choice: TaskInstance | None = None
            # first preference: an instance whose chain lives on this device
            for inst in ready:
                if inst.instance_id in taken:
                    continue
                chain = self._chains.get(inst.instance_id)
                dev = self._chain_device.get(chain) if chain is not None else None
                if dev == resource.device.device_id:
                    choice = inst
                    break
            if choice is None:
                # otherwise: oldest ready instance not bound elsewhere
                for inst in ready:
                    if inst.instance_id in taken:
                        continue
                    chain = self._chains.get(inst.instance_id)
                    dev = self._chain_device.get(chain) if chain is not None else None
                    if dev is None or dev == resource.device.device_id:
                        choice = inst
                        break
            if choice is None:
                continue
            taken.add(choice.instance_id)
            chain = self._chains.get(choice.instance_id)
            if chain is not None:
                self._chain_device.setdefault(chain, resource.device.device_id)
            out.append((choice, resource.resource_id))
        return out
