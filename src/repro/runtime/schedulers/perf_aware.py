"""Performance-aware earliest-finish scheduling (the DP-Perf policy).

Reproduces the Planas et al. self-adaptive OmpSs scheduler as the paper uses
it:

* a **profiling phase** seeds per-``(kernel, device)`` execution-rate
  estimates — the paper gives each device 3 task instances per kernel and
  excludes that phase from the measurements, so here the seed comes from a
  :class:`ProfileTable` built by the DP-Perf strategy's profiling run;
* estimates are refined online from measured instance durations
  (exponentially weighted moving average);
* every ready instance is assigned immediately to the resource with the
  **earliest estimated finish time**, tracking each device's estimated busy
  time ("the runtime ... estimates the device busy time ... and will
  schedule the coming partition to that device").

Like DP-Dep, the policy "also tracks data dependency as DP-Dep": chain
residency is recorded and used when estimating the *host* side (pulling a
device-resident chain back is billed its transfer).  Accelerator
estimates, however, bill the instance's full partitioned traffic at
nominal link bandwidth regardless of residency — the 0.7-era directory
cannot promise a cached copy survives until the task runs — which both
stabilizes the assignment equilibrium and reproduces the paper's
observation that DP-Perf "overestimates the GPU capability".  The
estimates also ignore link queueing and message latency; together with
the chunk granularity (n/m), this is why DP-Perf can absorb all m
instances onto the GPU on transfer-bound workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SchedulingError
from repro.platform.topology import ComputeResource
from repro.runtime.dependence import dependence_chains
from repro.runtime.graph import TaskGraph, TaskInstance
from repro.runtime.kernels import AccessPattern
from repro.runtime.schedulers.base import Scheduler, SchedulingContext


def _partitioned_bytes(inst: TaskInstance) -> tuple[int, int]:
    """``(input, output)`` bytes of the instance's PARTITIONED accesses.

    FULL accesses are excluded: they are fetched once per device, not per
    chunk, so billing them to every instance would wildly overestimate.
    """
    in_b = 0
    out_b = 0
    for acc in inst.kernel.accesses:
        if acc.pattern is AccessPattern.FULL:
            continue
        nbytes = acc.region(inst.lo, inst.hi).nbytes(acc.array.elem_bytes)
        if acc.mode.reads:
            in_b += nbytes
        if acc.mode.writes:
            out_b += nbytes
    return in_b, out_b


@dataclass
class ProfileTable:
    """Per-``(kernel name, device id)`` estimated seconds per kernel index.

    Rates are whole-device rates; the scheduler scales by the resource
    share (one CPU thread provides ``1/m`` of the CPU).  ``transfer_s_per_
    byte`` maps accelerator device ids to the nominal per-byte transfer
    cost used in estimates (0 when unknown).
    """

    rate_s_per_index: dict[tuple[str, str], float] = field(default_factory=dict)
    transfer_s_per_byte: dict[str, float] = field(default_factory=dict)

    def get(self, kernel: str, device_id: str) -> float | None:
        return self.rate_s_per_index.get((kernel, device_id))

    def set(self, kernel: str, device_id: str, rate: float) -> None:
        if rate <= 0:
            raise SchedulingError("profiled rate must be positive")
        self.rate_s_per_index[(kernel, device_id)] = rate


class PerfAwareScheduler(Scheduler):
    """Earliest-finish-time assignment over online performance estimates."""

    name = "perf-aware"
    dynamic = True

    def __init__(
        self,
        profile: ProfileTable | None = None,
        *,
        ewma_alpha: float = 0.5,
    ) -> None:
        if not (0.0 <= ewma_alpha <= 1.0):
            raise SchedulingError("ewma_alpha must be in [0, 1]")
        self.profile = profile or ProfileTable()
        self.ewma_alpha = ewma_alpha
        #: estimated absolute time at which each resource drains its queue
        self._busy_until: dict[str, float] = {}
        self._shares: dict[str, tuple[float, str]] = {}
        self._graph: TaskGraph | None = None
        self._host_id: str | None = None
        #: dependence-chain tracking (shared policy with DP-Dep)
        self._chains: dict[int, int] = {}
        self._chain_device: dict[int, str] = {}
        #: ``(work_units, in_bytes, out_bytes)`` memoized per
        #: ``(kernel, lo, hi, n)`` signature — pure functions of the
        #: instance's range, and iterative apps re-issue the same ranges
        #: every iteration, so the access-list walk runs once per
        #: distinct chunk instead of once per instance per resource
        self._inst_cost: dict[tuple, tuple[float, int, int]] = {}

    def start(self, graph: TaskGraph, ctx: SchedulingContext) -> None:
        self._graph = graph
        self._busy_until = {r.resource_id: 0.0 for r in ctx.resources}
        self._shares = {
            r.resource_id: (r.share, r.device.device_id) for r in ctx.resources
        }
        self._host_id = next(
            (r.device.device_id for r in ctx.resources if not r.is_accelerator),
            None,
        )
        # default the per-byte link costs from the platform for any
        # accelerator the seeding profile did not cover
        if ctx.platform is not None:
            for r in ctx.resources:
                if r.is_accelerator:
                    dev_id = r.device.device_id
                    if dev_id not in self.profile.transfer_s_per_byte:
                        link = ctx.platform.link_for(dev_id)
                        self.profile.transfer_s_per_byte[dev_id] = (
                            1.0 / link.bandwidth
                        )
        self._chains = dependence_chains(graph)
        self._chain_device.clear()
        self._inst_cost = {}

    # -- estimation -------------------------------------------------------

    def _rate(self, inst: TaskInstance, resource: ComputeResource) -> float:
        """Estimated whole-device seconds/index for this kernel."""
        kernel = inst.kernel
        rate = self.profile.get(kernel.name, resource.device.device_id)
        if rate is None:
            # cold start: fall back to an optimistic peak-rate guess, like a
            # runtime that has not yet profiled this kernel on this device.
            rate = 1.0 / kernel.device_throughput(resource.device, inst.invocation.n)
            self.profile.set(kernel.name, resource.device.device_id, rate)
        return rate

    def _data_home(self, inst: TaskInstance) -> str | None:
        """Where the instance's dependence chain's data currently lives.

        ``None`` means host memory (fresh chains start there).
        """
        chain = self._chains.get(inst.instance_id)
        if chain is None:
            return self._host_id
        return self._chain_device.get(chain, self._host_id)

    def _cost(self, inst: TaskInstance) -> tuple[float, int, int]:
        """Memoized ``(work_units, in_bytes, out_bytes)`` of an instance."""
        # keyed by kernel object, not name: DAG apps emit distinct
        # same-named kernels (different arrays, possibly different work
        # profiles), while looped apps reuse one Kernel per iteration
        key = (id(inst.kernel), inst.lo, inst.hi, inst.invocation.n)
        cost = self._inst_cost.get(key)
        if cost is None:
            work = inst.kernel.work_units(inst.lo, inst.hi)
            in_b, out_b = _partitioned_bytes(inst)
            cost = self._inst_cost[key] = (work, in_b, out_b)
        return cost

    def estimate(self, inst: TaskInstance, resource: ComputeResource) -> float:
        """Estimated execution time of ``inst`` on ``resource``.

        Compute scales with the resource share.  A transfer charge — the
        instance's partitioned data volume at nominal link bandwidth — is
        added when the chain's data would have to cross the link to reach
        ``resource``: accelerators fetching host/foreign data, or the host
        pulling an accelerator-resident chain back.  Barriers reset chain
        residency to the host (taskwait flushes to host memory).
        """
        rate = self._rate(inst, resource)
        # work units, not index counts: for imbalanced kernels (ref [9])
        # the runtime knows each task instance's size at creation time
        work, in_b, out_b = self._cost(inst)
        est = work * rate / resource.share
        home = self._data_home(inst)
        target = resource.device.device_id
        if resource.is_accelerator:
            # the runtime bills an accelerator task its full partitioned
            # traffic — inputs in, outputs eventually back — regardless of
            # current residency (the 0.7-era directory cannot promise a
            # cached copy survives until the task runs); at execution time
            # resident data is of course not re-transferred, which is the
            # systematic GPU-cost overestimate that keeps the equilibrium
            # stable instead of creeping all chains onto the device.
            per_byte = self.profile.transfer_s_per_byte.get(target, 0.0)
            est += (in_b + out_b) * per_byte
        elif home != self._host_id and home is not None:
            # pulling a device-resident chain back to the host
            per_byte = self.profile.transfer_s_per_byte.get(home, 0.0)
            est += in_b * per_byte
        return est

    # -- policy ------------------------------------------------------------

    def assign(
        self, ready: Sequence[TaskInstance], ctx: SchedulingContext
    ) -> list[tuple[TaskInstance, str]]:
        out: list[tuple[TaskInstance, str]] = []
        busy_until = self._busy_until
        now = ctx.now
        for inst in ready:  # creation order, assigned immediately
            best_rid: str | None = None
            best_finish = float("inf")
            # estimate() is a pure function of the instance and the
            # resource's (device, share) — identical for every thread of
            # the same device — so compute it once per device class, not
            # once per resource (m+1 calls collapse to one per device)
            est_by_class: dict[tuple[str, float], float] = {}
            for resource in ctx.resources:
                cls = (resource.device.device_id, resource.share)
                est = est_by_class.get(cls)
                if est is None:
                    est = est_by_class[cls] = self.estimate(inst, resource)
                start = max(now, busy_until.get(resource.resource_id, 0.0))
                finish = start + est
                if finish < best_finish - 1e-15:
                    best_finish = finish
                    best_rid = resource.resource_id
            if best_rid is None:
                raise SchedulingError("no resources available for assignment")
            self._busy_until[best_rid] = best_finish
            chain = self._chains.get(inst.instance_id)
            if chain is not None:
                self._chain_device[chain] = self._shares[best_rid][1]
            out.append((inst, best_rid))
        return out

    def on_complete(
        self,
        instance: TaskInstance,
        resource_id: str,
        *,
        compute_time: float,
        transfer_time: float,
    ) -> None:
        """EWMA-refresh the rate estimate from a measured instance."""
        if instance.size <= 0:
            return
        resource = self._shares.get(resource_id)
        if resource is None:
            return
        # normalize the measurement back to a whole-device per-work-unit
        # rate; the runtime measures the task's wall time, which includes
        # the transfers it triggered — this is how the scheduler learns
        # that a device is transfer-bound for a kernel
        share, device_id = resource
        work = self._cost(instance)[0]
        if work <= 0:
            return
        measured = (compute_time + transfer_time) * share / work
        key = (instance.kernel.name, device_id)
        old = self.profile.rate_s_per_index.get(key)
        if old is None:
            self.profile.rate_s_per_index[key] = measured
        else:
            a = self.ewma_alpha
            self.profile.rate_s_per_index[key] = a * measured + (1 - a) * old
