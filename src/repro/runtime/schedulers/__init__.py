"""Task schedulers.

* :class:`~repro.runtime.schedulers.base.StaticScheduler` dispatches pinned
  instances as soon as their dependences are met (static partitioning).
* :class:`~repro.runtime.schedulers.breadth_first.BreadthFirstScheduler` is
  the OmpSs default policy used by **DP-Dep**: FIFO over ready instances,
  idle resources self-serve, dependence chains stay on the device that
  started them.
* :class:`~repro.runtime.schedulers.perf_aware.PerfAwareScheduler` is the
  Planas-style policy used by **DP-Perf**: per-device performance estimates
  (seeded by a profiling phase, refined online) drive earliest-finish-time
  assignment.
* :class:`~repro.runtime.schedulers.affinity.AffinityScheduler` is the
  Bleuse-style locality policy used by **DP-Aff**: region residency is
  tracked per device, local work is preferred, and remote-resident work
  is only stolen by otherwise-idle resources.
"""

from repro.runtime.schedulers.base import Scheduler, SchedulingContext, StaticScheduler
from repro.runtime.schedulers.affinity import AffinityScheduler
from repro.runtime.schedulers.breadth_first import BreadthFirstScheduler
from repro.runtime.schedulers.perf_aware import PerfAwareScheduler, ProfileTable

__all__ = [
    "Scheduler",
    "SchedulingContext",
    "StaticScheduler",
    "AffinityScheduler",
    "BreadthFirstScheduler",
    "PerfAwareScheduler",
    "ProfileTable",
]
