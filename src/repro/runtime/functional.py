"""Functional execution of task graphs with real NumPy data.

The simulated executor answers *how long* a partitioned execution takes; this
module answers *whether it computes the right thing*.  It runs the kernels'
NumPy bodies chunk-by-chunk in a dependence-respecting order, so any chunking
produced by any partitioning strategy can be checked for numerical
equivalence against the sequential (single-chunk) execution.

This is the reproduction's stand-in for the paper's correctness property
that OmpSs' dependence tracking "ensures a correct, asynchronous execution
of tasks" no matter how the workload is partitioned.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import DependenceError
from repro.runtime.graph import InstanceKind, Program, TaskGraph, chunk_ranges, expand_program
from repro.runtime.dependence import build_dependences


def topological_order(graph: TaskGraph) -> list[int]:
    """Instance ids in a dependence-respecting order (Kahn's algorithm).

    Ready instances are served in creation order, which matches the
    simulated executor's tie-breaking and keeps runs deterministic.
    """
    remaining = {i.instance_id: len(i.deps) for i in graph.instances}
    ready = sorted(iid for iid, n in remaining.items() if n == 0)
    order: list[int] = []
    import heapq

    heap = list(ready)
    heapq.heapify(heap)
    while heap:
        iid = heapq.heappop(heap)
        order.append(iid)
        for succ in graph.instances[iid].succs:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(heap, succ)
    if len(order) != len(graph.instances):
        raise DependenceError("task graph has a cycle; cannot order functionally")
    return order


def run_functional(
    graph: TaskGraph,
    arrays: Mapping[str, np.ndarray],
    *,
    copy: bool = True,
) -> dict[str, np.ndarray]:
    """Execute every compute instance's NumPy body in dependence order.

    Parameters
    ----------
    graph:
        An expanded task graph (dependences need not be built; they are
        ignored here beyond ordering, which falls back to creation order
        when no edges exist — creation order is always dependence-safe
        because instances are created in program order).
    arrays:
        Name -> 1-D (or flattened-view-compatible) NumPy array.  Sizes must
        match the program's :class:`~repro.runtime.regions.ArraySpec`.
    copy:
        Work on copies (default) so the caller's arrays are untouched.

    Returns the dict of (possibly copied) arrays after execution.
    """
    data = {
        name: (arr.copy() if copy else arr) for name, arr in arrays.items()
    }
    for name, spec in graph.program.arrays.items():
        if name not in data:
            raise DependenceError(f"missing array {name!r}")
        if data[name].size != spec.n_elems:
            raise DependenceError(
                f"array {name!r} has {data[name].size} elements, "
                f"spec says {spec.n_elems}"
            )
    order = (
        topological_order(graph)
        if graph.n_edges
        else [i.instance_id for i in graph.instances]
    )
    for iid in order:
        inst = graph.instances[iid]
        if inst.kind is not InstanceKind.COMPUTE:
            continue
        inst.kernel.run_impl(data, inst.lo, inst.hi, inst.invocation.n)
    return data


def run_sequential(program: Program, arrays: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Reference execution: every invocation as one whole-size chunk."""
    graph = expand_program(program, lambda inv: [(0, inv.n, None, None)])
    return run_functional(graph, arrays)


def run_chunked(
    program: Program,
    arrays: Mapping[str, np.ndarray],
    *,
    n_chunks: int,
) -> dict[str, np.ndarray]:
    """Execute with every invocation split into ``n_chunks`` chunks.

    Dependences are built and honored, exercising the same ordering
    machinery the simulated executor uses.
    """
    graph = expand_program(
        program,
        lambda inv: [(lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, n_chunks)],
    )
    build_dependences(graph)
    graph.validate_acyclic()
    return run_functional(graph, arrays)


def assert_equivalent(
    a: Mapping[str, np.ndarray],
    b: Mapping[str, np.ndarray],
    *,
    rtol: float = 1e-5,
    atol: float = 1e-6,
    arrays: Iterable[str] | None = None,
) -> None:
    """Raise ``AssertionError`` unless the two result sets match numerically."""
    names = list(arrays) if arrays is not None else sorted(a)
    for name in names:
        np.testing.assert_allclose(
            a[name], b[name], rtol=rtol, atol=atol,
            err_msg=f"array {name!r} differs between executions",
        )
