"""Programs, kernel invocations, task instances and the task graph.

A data-parallel application is represented at two levels:

* **Program level** — an ordered list of :class:`KernelInvocation` (one per
  kernel execution in the unrolled execution flow: loops are unrolled into
  one invocation per iteration) interleaved with ``taskwait`` markers.
* **Task level** — each invocation is *chunked* into one or more
  :class:`TaskInstance` (the OmpSs task instances the paper schedules).
  Static strategies pin instances to devices/resources; dynamic strategies
  leave them unpinned for the scheduler.

The :class:`TaskGraph` holds the instances plus the dependence edges added
by :func:`repro.runtime.dependence.build_dependences`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConfigurationError, DependenceError
from repro.runtime.kernels import Kernel
from repro.runtime.regions import ArraySpec, Region


class InstanceKind(enum.Enum):
    """Kind of node in the task graph."""

    COMPUTE = "compute"
    #: ``taskwait``: waits for all prior instances and flushes device data
    #: to host memory.
    BARRIER = "barrier"


@dataclass(frozen=True)
class KernelInvocation:
    """One execution of a kernel in the (unrolled) program flow.

    Parameters
    ----------
    invocation_id:
        Unique id within the program, in program order.
    kernel:
        The invoked kernel.
    n:
        Problem size — number of kernel indices of this invocation.
    iteration:
        Loop iteration this invocation belongs to (0 for non-loop code).
    sync_after:
        Whether a ``taskwait`` follows this invocation.
    """

    invocation_id: int
    kernel: Kernel
    n: int
    iteration: int = 0
    sync_after: bool = False

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(
                f"invocation {self.invocation_id} of {self.kernel.name!r}: "
                f"problem size must be positive, got {self.n}"
            )


@dataclass
class Program:
    """An ordered sequence of kernel invocations plus the data arrays."""

    invocations: list[KernelInvocation]
    arrays: dict[str, ArraySpec]

    def __post_init__(self) -> None:
        ids = [inv.invocation_id for inv in self.invocations]
        if ids != sorted(set(ids)):
            raise ConfigurationError("invocation ids must be unique and ordered")
        for inv in self.invocations:
            for acc in inv.kernel.accesses:
                known = self.arrays.get(acc.array.name)
                if known is None or known != acc.array:
                    raise ConfigurationError(
                        f"kernel {inv.kernel.name!r} accesses array "
                        f"{acc.array.name!r} not declared (or mismatched) in "
                        "the program"
                    )

    @property
    def kernels(self) -> list[Kernel]:
        """Distinct kernels in first-appearance order."""
        seen: dict[str, Kernel] = {}
        for inv in self.invocations:
            seen.setdefault(inv.kernel.name, inv.kernel)
        return list(seen.values())

    def total_indices(self) -> int:
        """Sum of problem sizes over all invocations (workload proxy)."""
        return sum(inv.n for inv in self.invocations)


@dataclass
class TaskInstance:
    """One schedulable chunk of one kernel invocation.

    ``pinned_device``/``pinned_resource`` implement static partitioning:
    a device pin restricts the instance to any resource of that device, a
    resource pin nails it to one specific resource (one CPU thread).
    Unpinned instances are the dynamic scheduler's to place.
    """

    instance_id: int
    kind: InstanceKind
    invocation: KernelInvocation | None = None
    lo: int = 0
    hi: int = 0
    pinned_device: str | None = None
    pinned_resource: str | None = None
    #: instance ids this instance depends on (filled by dependence analysis)
    deps: set[int] = field(default_factory=set)
    #: instance ids depending on this instance
    succs: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.kind is InstanceKind.COMPUTE:
            if self.invocation is None:
                raise ConfigurationError("compute instance needs an invocation")
            if not (0 <= self.lo < self.hi <= self.invocation.n):
                raise ConfigurationError(
                    f"instance {self.instance_id}: chunk [{self.lo}, {self.hi}) "
                    f"outside invocation size {self.invocation.n}"
                )

    @property
    def size(self) -> int:
        """Number of kernel indices in this chunk (0 for barriers)."""
        return self.hi - self.lo if self.kind is InstanceKind.COMPUTE else 0

    @property
    def kernel(self) -> Kernel:
        if self.invocation is None:
            raise ConfigurationError(f"instance {self.instance_id} has no kernel")
        return self.invocation.kernel

    @property
    def is_barrier(self) -> bool:
        return self.kind is InstanceKind.BARRIER

    def regions(self) -> list[tuple[Region, "object"]]:
        """``(region, mode)`` pairs this instance touches (compute only)."""
        if self.kind is not InstanceKind.COMPUTE:
            return []
        return [
            (acc.region(self.lo, self.hi), acc.mode)
            for acc in self.kernel.accesses
        ]

    def label(self) -> str:
        """Short display label for traces."""
        if self.is_barrier:
            return f"taskwait#{self.instance_id}"
        return f"{self.kernel.name}[{self.lo}:{self.hi})#{self.instance_id}"

    def label_lazy(self) -> tuple:
        """:meth:`label` as an unformatted ``(template, *args)`` tuple.

        The trace store packs this into fixed-width columns and formats
        the text only if the row is materialized — same rendered label,
        no per-instance string on the simulation hot path.
        """
        if self.is_barrier:
            return ("taskwait#{}", self.instance_id)
        return (
            "{}[{}:{})#{}",
            self.kernel.name, self.lo, self.hi, self.instance_id,
        )


@dataclass
class TaskGraph:
    """The fully expanded, dependence-annotated set of task instances."""

    program: Program
    instances: list[TaskInstance] = field(default_factory=list)

    def instance(self, instance_id: int) -> TaskInstance:
        inst = self.instances[instance_id]
        if inst.instance_id != instance_id:
            raise DependenceError("task graph instance ids out of order")
        return inst

    @property
    def compute_instances(self) -> list[TaskInstance]:
        return [i for i in self.instances if i.kind is InstanceKind.COMPUTE]

    @property
    def n_edges(self) -> int:
        return sum(len(i.deps) for i in self.instances)

    def roots(self) -> list[TaskInstance]:
        """Instances with no dependences (ready at time zero)."""
        return [i for i in self.instances if not i.deps]

    def validate_acyclic(self) -> None:
        """Raise :class:`DependenceError` when the graph has a cycle.

        Dependences are built from program order so cycles indicate a bug;
        the integration tests call this on every constructed graph.
        """
        state = [0] * len(self.instances)  # 0 new, 1 visiting, 2 done
        for start in range(len(self.instances)):
            if state[start]:
                continue
            stack: list[tuple[int, Iterable[int]]] = [
                (start, iter(self.instances[start].succs))
            ]
            state[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if state[succ] == 1:
                        raise DependenceError(
                            f"dependence cycle through instances {node} -> {succ}"
                        )
                    if state[succ] == 0:
                        state[succ] = 1
                        stack.append((succ, iter(self.instances[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 2
                    stack.pop()


def chunk_ranges(n: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into ``n_chunks`` contiguous near-equal ranges.

    The first ``n % n_chunks`` chunks get one extra index.  When
    ``n_chunks > n`` only ``n`` single-index chunks are produced (a task
    instance cannot be empty).
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if n_chunks <= 0:
        raise ConfigurationError(f"n_chunks must be positive, got {n_chunks}")
    n_chunks = min(n_chunks, n)
    base, extra = divmod(n, n_chunks)
    ranges = []
    lo = 0
    for i in range(n_chunks):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def split_sizes(n: int, sizes: Sequence[int]) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into contiguous ranges of the given ``sizes``.

    Zero sizes are skipped (producing no range); sizes must sum to ``n``.
    """
    if sum(sizes) != n:
        raise ConfigurationError(
            f"split sizes {list(sizes)} do not sum to problem size {n}"
        )
    ranges = []
    lo = 0
    for size in sizes:
        if size < 0:
            raise ConfigurationError("split sizes must be >= 0")
        if size:
            ranges.append((lo, lo + size))
            lo += size
    return ranges


def expand_program(
    program: Program,
    chunker,
) -> TaskGraph:
    """Expand a program into a :class:`TaskGraph` (without dependences).

    ``chunker(invocation)`` returns a list of
    ``(lo, hi, pinned_device, pinned_resource)`` tuples describing this
    invocation's task instances.  A barrier instance is appended after
    every invocation whose ``sync_after`` flag is set.
    """
    graph = TaskGraph(program=program)
    next_id = 0
    for inv in program.invocations:
        for lo, hi, dev, res in chunker(inv):
            graph.instances.append(
                TaskInstance(
                    instance_id=next_id,
                    kind=InstanceKind.COMPUTE,
                    invocation=inv,
                    lo=lo,
                    hi=hi,
                    pinned_device=dev,
                    pinned_resource=res,
                )
            )
            next_id += 1
        if inv.sync_after:
            graph.instances.append(
                TaskInstance(instance_id=next_id, kind=InstanceKind.BARRIER)
            )
            next_id += 1
    return graph
