"""Kernels: the unit of parallel work in a data-parallel application.

A :class:`Kernel` bundles three things:

* **data accesses** (:class:`AccessSpec`) — how a chunk ``[lo, hi)`` of the
  kernel's index space maps to regions of named arrays; this drives both
  dependence analysis and the coherence/transfer model;
* **a cost model** (:class:`KernelCostModel`) — per-element FLOPs and
  device-memory traffic plus per-device-kind efficiency factors, consumed by
  the platform's roofline model;
* **an optional NumPy body** — ``impl(arrays, lo, hi, n, **params)`` used by
  the functional executor to verify numerical equivalence of partitioned
  execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.platform.device import Device, DeviceKind
from repro.runtime.regions import AccessMode, ArraySpec, Region

#: Signature of a functional kernel body: mutates ``arrays`` in place for the
#: index chunk ``[lo, hi)`` out of ``n`` total indices.
KernelImpl = Callable[..., None]


class AccessPattern(enum.Enum):
    """How a kernel chunk's index range maps onto an array region."""

    #: chunk ``[lo, hi)`` touches elements ``[lo*epi, hi*epi)``
    PARTITIONED = "partitioned"
    #: every chunk touches the whole array (e.g. matrix B in GEMM,
    #: all body positions in N-body)
    FULL = "full"
    #: chunk ``[lo, hi)`` touches ``[prefix[lo], prefix[hi])`` — variable
    #: extents (CSR values/columns in SpMV, ref-[9]-style workloads)
    PREFIX = "prefix"


@dataclass(frozen=True)
class AccessSpec:
    """One data access of a kernel.

    Parameters
    ----------
    array:
        The accessed array.
    mode:
        Read/write direction (drives RAW/WAR/WAW edges).
    pattern:
        :attr:`AccessPattern.PARTITIONED` accesses scale with the chunk;
        :attr:`AccessPattern.FULL` accesses touch the entire array from
        every chunk.
    elems_per_index:
        For partitioned accesses, array elements per kernel index (e.g. a
        row-partitioned ``N x N`` matrix has ``elems_per_index = N``).
    prefix:
        For PREFIX accesses, the element-offset prefix array (length
        ``n + 1``): chunk ``[lo, hi)`` touches ``[prefix[lo], prefix[hi])``.
    halo:
        For PARTITIONED *reads*, extend the region by ``halo`` indices on
        each side (clamped to the array) — stencil neighbour access.
        Halo reads create the cross-chunk dependences that make
        unsynchronized stencil loops execute correctly in any order.
    """

    array: ArraySpec
    mode: AccessMode
    pattern: AccessPattern = AccessPattern.PARTITIONED
    elems_per_index: int = 1
    prefix: "np.ndarray | None" = field(default=None, compare=False)
    halo: int = 0

    def __post_init__(self) -> None:
        if self.elems_per_index <= 0:
            raise ConfigurationError("elems_per_index must be positive")
        if self.halo < 0:
            raise ConfigurationError("halo must be >= 0")
        if self.halo and (
            self.pattern is not AccessPattern.PARTITIONED or self.mode.writes
        ):
            raise ConfigurationError(
                f"access to {self.array.name!r}: halo applies to "
                "PARTITIONED reads only"
            )
        if self.pattern is AccessPattern.FULL and self.mode.writes:
            raise ConfigurationError(
                f"access to {self.array.name!r}: FULL writes from every chunk "
                "would make all chunks conflict; model the kernel differently"
            )
        if (self.pattern is AccessPattern.PREFIX) != (self.prefix is not None):
            raise ConfigurationError(
                f"access to {self.array.name!r}: PREFIX pattern and a "
                "prefix array go together"
            )

    def region(self, lo: int, hi: int) -> Region:
        """The array region touched by chunk ``[lo, hi)``."""
        if self.pattern is AccessPattern.FULL:
            return self.array.full_region()
        if self.pattern is AccessPattern.PREFIX:
            return Region(
                self.array.name, int(self.prefix[lo]), int(self.prefix[hi])
            )
        start = max(0, (lo - self.halo)) * self.elems_per_index
        end = min((hi + self.halo) * self.elems_per_index, self.array.n_elems)
        return Region(self.array.name, start, end)


@dataclass(frozen=True)
class KernelCostModel:
    """Analytic per-element work description of a kernel.

    Per-element FLOPs may depend linearly on the total problem size ``n``
    (``flops = flops_per_elem + flops_per_elem_per_n * n``), which covers
    O(n^2) kernels such as all-pairs N-body.

    ``compute_eff`` / ``mem_eff`` map a :class:`DeviceKind` to the fraction
    of that device's peak rate this kernel sustains.  These are the only
    calibrated constants in the reproduction; everything downstream
    (splits, rankings, crossovers) is derived.
    """

    flops_per_elem: float = 0.0
    mem_bytes_per_elem: float = 0.0
    flops_per_elem_per_n: float = 0.0
    mem_bytes_per_elem_per_n: float = 0.0
    compute_eff: Mapping[DeviceKind, float] = field(
        default_factory=lambda: {DeviceKind.CPU: 0.5, DeviceKind.GPU: 0.5}
    )
    mem_eff: Mapping[DeviceKind, float] = field(
        default_factory=lambda: {DeviceKind.CPU: 0.6, DeviceKind.GPU: 0.6}
    )
    double_precision: bool = False

    def flops(self, chunk: int, n_total: int) -> float:
        """FLOPs performed by a chunk of ``chunk`` indices out of ``n_total``."""
        return chunk * (self.flops_per_elem + self.flops_per_elem_per_n * n_total)

    def mem_bytes(self, chunk: int, n_total: int) -> float:
        """Device-memory bytes touched by a chunk of ``chunk`` indices."""
        return chunk * (
            self.mem_bytes_per_elem + self.mem_bytes_per_elem_per_n * n_total
        )

    def effs(self, kind: DeviceKind) -> tuple[float, float]:
        """``(compute_eff, mem_eff)`` for a device kind (default 0.5/0.6)."""
        return (self.compute_eff.get(kind, 0.5), self.mem_eff.get(kind, 0.6))


@dataclass(frozen=True)
class Kernel:
    """A named data-parallel kernel.

    Parameters
    ----------
    name:
        Kernel name, unique within an application.
    cost:
        The analytic cost model.
    accesses:
        Data accesses (at least one; at least one write, otherwise the
        kernel is dead code).
    impl:
        Optional NumPy body for functional verification.
    params:
        Extra keyword arguments forwarded to ``impl``.
    work_prefix:
        Optional prefix-sum array of per-index work weights (length
        ``n + 1``, ``work_prefix[0] == 0``).  *Imbalanced* kernels — the
        Glinda lineage's ref [9] case, e.g. CSR SpMV where each row costs
        its nonzero count — carry data-dependent work; the cost model's
        per-element quantities are then interpreted per *work unit*.
        ``None`` means uniform work (one unit per index).
    """

    name: str
    cost: KernelCostModel
    accesses: tuple[AccessSpec, ...]
    impl: KernelImpl | None = None
    params: Mapping[str, object] = field(default_factory=dict)
    work_prefix: "np.ndarray | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.accesses:
            raise ConfigurationError(f"kernel {self.name!r} has no data accesses")
        if not any(a.mode.writes for a in self.accesses):
            raise ConfigurationError(f"kernel {self.name!r} writes nothing")
        if self.work_prefix is not None:
            wp = self.work_prefix
            if wp.ndim != 1 or len(wp) < 2 or wp[0] != 0:
                raise ConfigurationError(
                    f"kernel {self.name!r}: work_prefix must be a 1-D "
                    "prefix-sum array starting at 0"
                )
            if (np.diff(wp) < 0).any():
                raise ConfigurationError(
                    f"kernel {self.name!r}: work weights must be >= 0"
                )

    @property
    def imbalanced(self) -> bool:
        """Whether per-index work varies (ref [9] workloads)."""
        return self.work_prefix is not None

    def work_units(self, lo: int, hi: int) -> float:
        """Work in ``[lo, hi)``: weighted count, or the index count."""
        if self.work_prefix is None:
            return float(hi - lo)
        return float(self.work_prefix[hi] - self.work_prefix[lo])

    @property
    def total_work(self) -> float:
        """Total work units of the full index space."""
        if self.work_prefix is None:
            raise ConfigurationError(
                f"kernel {self.name!r} has uniform work; total_work is "
                "the problem size"
            )
        return float(self.work_prefix[-1])

    # -- timing helpers ---------------------------------------------------

    def chunk_time(
        self,
        device: Device,
        chunk: float,
        n_total: int,
        *,
        share: float = 1.0,
        include_launch: bool = True,
    ) -> float:
        """Execution time of a ``chunk``-unit task instance on ``device``.

        ``chunk`` counts *work units*: plain indices for uniform kernels,
        weighted work (:meth:`work_units`) for imbalanced ones.  ``share``
        scales the device's peak rates for partial resources (one CPU
        core out of ``m`` threads has ``share = 1/m``).
        """
        if chunk <= 0:
            return 0.0
        ce, me = self.cost.effs(device.kind)
        return device.kernel_time(
            flops=self.cost.flops(chunk, n_total),
            mem_bytes=self.cost.mem_bytes(chunk, n_total),
            compute_eff=ce * share,
            mem_eff=me * share,
            double_precision=self.cost.double_precision,
            include_launch=include_launch,
        )

    def device_throughput(self, device: Device, n_total: int) -> float:
        """Sustained kernel indices/second of the whole device.

        This is the quantity Glinda's profiling estimates (Θ in the
        partitioning model).
        """
        ce, me = self.cost.effs(device.kind)
        return device.throughput(
            flops_per_elem=self.cost.flops_per_elem
            + self.cost.flops_per_elem_per_n * n_total,
            bytes_per_elem=self.cost.mem_bytes_per_elem
            + self.cost.mem_bytes_per_elem_per_n * n_total,
            compute_eff=ce,
            mem_eff=me,
            double_precision=self.cost.double_precision,
        )

    # -- transfer accounting ------------------------------------------------

    def input_bytes(self, lo: int, hi: int) -> int:
        """Bytes of input data a chunk reads (for transfer estimation)."""
        total = 0
        for acc in self.accesses:
            if acc.mode.reads:
                region = acc.region(lo, hi)
                total += region.nbytes(acc.array.elem_bytes)
        return total

    def output_bytes(self, lo: int, hi: int) -> int:
        """Bytes of output data a chunk writes."""
        total = 0
        for acc in self.accesses:
            if acc.mode.writes:
                region = acc.region(lo, hi)
                total += region.nbytes(acc.array.elem_bytes)
        return total

    def run_impl(self, arrays: dict[str, np.ndarray], lo: int, hi: int, n: int) -> None:
        """Invoke the NumPy body on chunk ``[lo, hi)`` (functional executor)."""
        if self.impl is None:
            raise ConfigurationError(f"kernel {self.name!r} has no functional body")
        self.impl(arrays, lo, hi, n, **dict(self.params))
