"""The runtime engine: replays a task graph on the simulated platform.

The engine wires everything together:

* compute resources and link channels become serial
  :class:`~repro.sim.resources.SimResource` objects;
* an instance's lifecycle is *ready -> assigned -> transfers -> compute ->
  complete*; each stage is driven by typed completion events — small
  ``__slots__`` countdown objects (:class:`_ComputeArm`,
  :class:`_Transfer`, :class:`_BarrierArm`) and prebound ``(method, arg)``
  callbacks — rather than per-event closures, so the (default) fast
  engine's slot-dispatched run loop never allocates bookkeeping lambdas
  on the hot path; transfers serialize on the link channel of the target
  device and may overlap other instances' compute (dual-stream style
  pipelining);
* ``taskwait`` barriers flush dirty device data back to the host over the
  D2H channel before unblocking their successors;
* per-instance runtime costs: task creation overhead for every instance,
  plus a dynamic-decision overhead for dynamically scheduled ones — the
  "runtime scheduling overhead" the paper attributes to dynamic
  partitioning;
* optionally, a final flush returns all results to host memory at program
  end (end-to-end timing, like the paper's measurements that include
  getting results back).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.artifact import RunArtifact, TraceSummary, check_detail
from repro.errors import SchedulingError, SimulationError
from repro.platform.topology import HOST_SPACE, ComputeResource, Platform
from repro.runtime.graph import TaskGraph, TaskInstance
from repro.runtime.memory import MemoryManager, TransferOp
from repro.runtime.schedulers.base import (
    Scheduler,
    SchedulingContext,
    StaticScheduler,
)
from repro.sim.engine import DEFAULT_MAX_EVENTS
from repro.sim.fast_engine import make_simulator
from repro.sim.resources import SimResource
from repro.sim.trace import ExecutionTrace

#: lazy trace-label templates for transfer rows — the store packs
#: (template, array, start, end) instead of interning a per-row f-string
_TRANSFER_LABEL = {
    "h2d": "{}[{}:{}) h2d",
    "d2h": "{}[{}:{}) d2h",
}


@dataclass
class _InflightTransfer:
    """A transfer on the wire; readers of the overlapping region wait."""

    start: int
    end: int
    done: bool = False
    waiters: list = field(default_factory=list)


class _ComputeArm:
    """Countdown to compute start: fires once every awaited transfer lands.

    One slotted object per dispatched instance replaces the per-dispatch
    ``arm_compute`` closure (and its cell variable); waiters lists and
    transfer completions invoke it like any zero-argument callback.
    """

    __slots__ = ("run", "inst", "resource", "space", "transfer_total", "pending")

    def __init__(self, run, inst, resource, space, transfer_total, pending):
        self.run = run
        self.inst = inst
        self.resource = resource
        self.space = space
        self.transfer_total = transfer_total
        self.pending = pending

    def __call__(self) -> None:
        self.pending -= 1
        if self.pending == 0:
            self.run._start_compute(
                self.inst, self.resource, self.space, self.transfer_total
            )


class _Transfer:
    """One transfer's lifecycle state: arm (source hazards) -> wire -> done.

    Replaces the ``start``/``arm``/``finish`` closure triple: upstream
    waiters call the object to count down source hazards, the link
    occupation completes through the run's prebound ``(method, self)``
    callback, and the inflight entry/key ride along in slots.
    """

    __slots__ = ("run", "op", "duration", "direction", "entry", "key",
                 "on_complete", "pending")

    def __init__(self, run, op, duration, direction, entry, key,
                 on_complete, pending):
        self.run = run
        self.op = op
        self.duration = duration
        self.direction = direction
        self.entry = entry
        self.key = key
        self.on_complete = on_complete
        self.pending = pending

    def __call__(self) -> None:
        """One upstream (source-side) transfer landed."""
        self.pending -= 1
        if self.pending == 0:
            self.start()

    def start(self) -> None:
        """Put the transfer on its link channel."""
        run = self.run
        op = self.op
        key = f"{op.device_space}:{self.direction}"
        # lane path: label/category come from the lane's pre-interned
        # template and constants; the varying args pack into the lazy
        # label columns and the meta dict is handed over un-copied
        run.links[key].occupy(
            self.duration,
            label="",
            category="transfer",
            on_complete=(run._transfer_done, self),
            lane=run.transfer_lanes[key],
            args=(op.array, op.start, op.end),
            meta={
                "array": op.array,
                "bytes": op.nbytes,
                "direction": self.direction,
                "device": op.device_space,
            },
            own_meta=True,
        )


class _BarrierArm:
    """Countdown to barrier completion: overhead event plus every flush."""

    __slots__ = ("run", "inst", "pending")

    def __init__(self, run, inst, pending):
        self.run = run
        self.inst = inst
        self.pending = pending

    def __call__(self) -> None:
        self.pending -= 1
        if self.pending == 0:
            run = self.run
            if run._pending_writebacks:
                run._wb_waiters.append(self.inst)
            else:
                run._mark_done(self.inst)


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunable runtime parameters.

    Parameters
    ----------
    cpu_threads:
        Number of SMP threads ``m`` (``None`` = host core count).  The
        paper uses the same ``m`` for Only-CPU, static, and dynamic runs.
    task_creation_overhead_s:
        Host-side cost of creating/bookkeeping one task instance (charged
        on the executing resource, all strategies).
    dynamic_decision_overhead_s:
        Extra per-instance cost of a runtime scheduling decision plus the
        device-side task management it triggers — dependence resolution,
        cache-directory lookups, OpenCL command construction (dynamic
        schedulers only).  The default (~0.3 ms) matches the per-task
        overheads reported for the 2014-era Nanos++ accelerator support
        and is the "runtime scheduling overhead" the paper's Propositions
        charge dynamic partitioning with.
    barrier_invalidates_devices:
        Whether ``taskwait`` empties the device caches after flushing
        (OmpSs-0.7 behaviour; see
        :meth:`repro.runtime.memory.MemoryManager.flush_to_host`).
    final_flush:
        Whether to flush all device data to the host at program end and
        include it in the makespan (end-to-end timing).
    eager_writeback:
        When an instance belongs to an invocation followed by a
        ``taskwait``, copy its device-written regions back to the host as
        soon as it completes, overlapping the flush with the rest of the
        iteration's compute (the producing task knows a synchronization
        follows, so it issues its own read-back — as the OpenCL-side
        tasks of the paper's synchronized loops do).  Instances without a
        following ``taskwait`` stay lazy, preserving device residency
        (SP-Unified's single-transfer property).
    barrier_overhead_s:
        Fixed cost of one ``taskwait``: quiescing the thread team,
        draining device command queues, and tearing down/rebuilding the
        cache directory.  Paid by every OmpSs-managed execution (static
        and dynamic alike); the Only-GPU baseline is plain OpenCL and
        overrides it to zero.  This calibrated lump is what makes adding
        synchronization an application never needed expensive — the
        paper's SP-Varied-without-sync penalty.
    max_events:
        Event budget per simulator drain — the safety valve against
        runaway self-scheduling loops.  Exceeding it raises a
        :class:`~repro.errors.SimulationError` that names this knob (and
        the CLI ``--max-events`` flag); raise it for legitimately huge
        simulations instead of editing the engine.
    plan_eval:
        Route static plans through the compiled
        :class:`~repro.sim.plan.PlanEvaluator` (dynamic plans always
        fall back to this engine, identically).  ``None`` means "not
        requested" — the ``REPRO_PLAN_EVAL`` environment variable, when
        set, overrides this field in both directions.  Populated by the
        ``--plan-eval`` CLI flag; consulted only by
        :func:`repro.partition.base.run_plan`, never by the engine
        itself.
    """

    cpu_threads: int | None = None
    task_creation_overhead_s: float = 5e-6
    dynamic_decision_overhead_s: float = 700e-6
    final_flush: bool = True
    eager_writeback: bool = True
    barrier_invalidates_devices: bool = True
    barrier_overhead_s: float = 11e-3
    max_events: int = DEFAULT_MAX_EVENTS
    plan_eval: bool | None = None


#: Compatibility alias: the historical result type.  One simulated run now
#: travels as a frozen :class:`~repro.artifact.RunArtifact`, which exposes
#: the full old ``ExecutionResult`` API (``makespan_ms``, ``gpu_fraction``,
#: ``ratio_by_kernel()``, ``trace`` ...) — derived numbers come from its
#: :class:`~repro.artifact.TraceSummary` instead of per-query trace scans.
ExecutionResult = RunArtifact


class RuntimeEngine:
    """Executes task graphs on a platform under a given scheduler."""

    def __init__(self, platform: Platform, *, config: RuntimeConfig | None = None) -> None:
        self.platform = platform
        self.config = config or RuntimeConfig()

    # -- public API ---------------------------------------------------------

    def execute(
        self, graph: TaskGraph, scheduler: Scheduler, *, detail: str = "full"
    ) -> RunArtifact:
        """Simulate ``graph`` under ``scheduler``; returns the run artifact.

        ``detail="full"`` (default) attaches the raw trace to the
        artifact; ``detail="summary"`` drops it, leaving only the
        precomputed :class:`~repro.artifact.TraceSummary` — the cheap
        form sweeps ship between processes.
        """
        run = _Run(self.platform, self.config, graph, scheduler)
        return run.go(detail=check_detail(detail))


class _Run:
    """Single-use execution state (the engine itself stays reusable)."""

    def __init__(
        self,
        platform: Platform,
        config: RuntimeConfig,
        graph: TaskGraph,
        scheduler: Scheduler,
    ) -> None:
        self.platform = platform
        self.config = config
        self.graph = graph
        self.scheduler = scheduler

        self.sim = make_simulator()
        self.trace = ExecutionTrace()
        self.memory = MemoryManager(platform, graph.program.arrays)

        self.resources: list[ComputeResource] = platform.compute_resources(
            cpu_threads=config.cpu_threads
        )
        self._resource_by_id: dict[str, ComputeResource] = {
            r.resource_id: r for r in self.resources
        }
        self.sim_resources: dict[str, SimResource] = {
            r.resource_id: SimResource(self.sim, r.resource_id, self.trace)
            for r in self.resources
        }
        self.links: dict[str, SimResource] = {}
        for acc in platform.accelerators:
            link = platform.link_for(acc.device_id)
            if link.duplex:
                self.links[f"{acc.device_id}:h2d"] = SimResource(
                    self.sim, f"link:{acc.device_id}:h2d", self.trace
                )
                self.links[f"{acc.device_id}:d2h"] = SimResource(
                    self.sim, f"link:{acc.device_id}:d2h", self.trace
                )
            else:
                shared = SimResource(self.sim, f"link:{acc.device_id}", self.trace)
                self.links[f"{acc.device_id}:h2d"] = shared
                self.links[f"{acc.device_id}:d2h"] = shared

        # staged trace lanes, one per pre-declared homogeneous stream:
        # resource/category/template and the constant hot metadata keys
        # are interned once here instead of once per occupation.  Every
        # compute resource carries exactly one stream (kernel-instance
        # rows); every link channel one per direction (a half-duplex
        # link's shared SimResource gets two lanes, one per direction).
        self.compute_lanes = {
            r.resource_id: self.trace.lane(
                r.resource_id, "compute", "{}[{}:{})#{}",
                device_kind=r.device.kind.value,
                device=r.device.device_id,
            )
            for r in self.resources
        }
        self.transfer_lanes = {}
        for acc in platform.accelerators:
            for direction in ("h2d", "d2h"):
                key = f"{acc.device_id}:{direction}"
                self.transfer_lanes[key] = self.trace.lane(
                    self.links[key].resource_id, "transfer",
                    _TRANSFER_LABEL[direction],
                    device=acc.device_id, direction=direction,
                )

        self.remaining = {
            inst.instance_id: len(inst.deps) for inst in graph.instances
        }
        self._last_invocation_id = (
            graph.program.invocations[-1].invocation_id
            if graph.program.invocations else -1
        )
        self.ready: list[TaskInstance] = []
        self.inflight: dict[str, int] = {r.resource_id: 0 for r in self.resources}
        self.done: set[int] = set()
        self.transfer_bytes = {"h2d": 0, "d2h": 0}
        self._pumping = False
        self._finalized = False
        self._static = None
        #: eager write-backs still on the link; barriers wait for them
        self._pending_writebacks = 0
        self._wb_waiters: list[TaskInstance] = []
        #: in-flight transfers per (array, destination space): readers of a
        #: region being transferred must wait for the wire, not just for
        #: the (optimistically updated) directory
        self._inflight: dict[tuple[str, str], list[_InflightTransfer]] = {}
        #: signature-keyed memo caches.  Looped programs re-issue the same
        #: (kernel object, range, n) chunk once per iteration, so regions
        #: and compute durations are materialized once per *signature*
        #: instead of once per instance — region lists are shared (callers
        #: only iterate them) and durations are pure roofline arithmetic,
        #: so sharing is value-identical to recomputing.
        self._regions_cache: dict[tuple, list] = {}
        self._duration_cache: dict[tuple, float] = {}
        #: prebound completion methods — occupations carry ``(method, arg)``
        #: tuples instead of a fresh closure each
        self._complete_cb = self._complete_compute
        self._transfer_cb = self._transfer_done

    # -- helpers --------------------------------------------------------------

    def _ctx(self) -> SchedulingContext:
        return SchedulingContext(
            now=self.sim.now,
            resources=self.resources,
            inflight=self.inflight,
            platform=self.platform,
        )

    def _resource_obj(self, resource_id: str) -> ComputeResource:
        try:
            return self._resource_by_id[resource_id]
        except KeyError:
            raise SchedulingError(
                f"scheduler chose unknown resource {resource_id!r}"
            ) from None

    def _regions(self, inst: TaskInstance) -> list:
        # the kernel *object* keys the memo: looped programs reuse one
        # Kernel per iteration, while DAG apps emit distinct same-named
        # kernels over different arrays (Cholesky's per-tile gemms)
        key = (id(inst.kernel), inst.lo, inst.hi, inst.invocation.n)
        regions = self._regions_cache.get(key)
        if regions is None:
            regions = list(inst.regions())
            self._regions_cache[key] = regions
        return regions

    def _link_channel(self, op: TransferOp) -> SimResource:
        direction = "h2d" if op.is_h2d else "d2h"
        return self.links[f"{op.device_space}:{direction}"]

    def _transfer_duration(self, op: TransferOp) -> float:
        link = self.platform.link_for(op.device_space)
        return link.transfer_time(op.nbytes)

    # -- main loop --------------------------------------------------------------

    def go(self, *, detail: str = "full") -> RunArtifact:
        self.scheduler.start(self.graph, self._ctx())
        for inst in self.graph.instances:
            if self.remaining[inst.instance_id] == 0:
                self.ready.append(inst)
        self._pump()
        self.sim.run(max_events=self.config.max_events)
        if len(self.done) != len(self.graph.instances):
            stuck = [
                i.label() for i in self.graph.instances
                if i.instance_id not in self.done
            ]
            raise SimulationError(
                f"deadlock: {len(stuck)} instances never ran, e.g. {stuck[:5]}"
            )
        if self.config.final_flush:
            self._final_flush()
            self.sim.run(max_events=self.config.max_events)
        return self._result(detail)

    def _pump(self) -> None:
        """Dispatch ready work; safe against reentrant completion events."""
        if self._pumping:
            return
        self._pumping = True
        try:
            progress = True
            while progress:
                progress = False
                # barriers run outside the scheduler
                for inst in list(self.ready):
                    if inst.is_barrier:
                        self.ready.remove(inst)
                        self._run_barrier(inst)
                        progress = True
                pinned = [i for i in self.ready if i.pinned_resource or i.pinned_device]
                unpinned = [
                    i for i in self.ready
                    if not (i.pinned_resource or i.pinned_device)
                ]
                assignments: list[tuple[TaskInstance, str]] = []
                if pinned:
                    if self._static is None:
                        self._static = StaticScheduler()
                    assignments.extend(self._static.assign(pinned, self._ctx()))
                if unpinned:
                    assignments.extend(self.scheduler.assign(unpinned, self._ctx()))
                seen_ids: set[int] = set()
                for inst, rid in assignments:
                    if inst.instance_id in seen_ids or inst not in self.ready:
                        raise SchedulingError(
                            f"scheduler assigned instance "
                            f"{inst.instance_id} twice or out of the "
                            "ready set"
                        )
                    seen_ids.add(inst.instance_id)
                    self.ready.remove(inst)
                    self._dispatch(inst, rid)
                    progress = True
        finally:
            self._pumping = False

    # -- instance lifecycle ----------------------------------------------------

    def _pending_overlaps(
        self, inst: TaskInstance, space: str
    ) -> list[_InflightTransfer]:
        """In-flight transfers the instance's reads must wait for."""
        found: list[_InflightTransfer] = []
        for region, mode in self._regions(inst):
            if not mode.reads:
                continue
            for entry in self._inflight.get((region.array, space), ()):
                if (
                    not entry.done
                    and entry.start < region.end
                    and region.start < entry.end
                    and entry not in found
                ):
                    found.append(entry)
        return found

    def _dispatch(self, inst: TaskInstance, resource_id: str) -> None:
        resource = self._resource_obj(resource_id)
        self.inflight[resource_id] += 1
        space = (
            HOST_SPACE
            if resource.device.device_id == self.platform.host.device_id
            else resource.device.device_id
        )
        # collect transfers already on the wire BEFORE issuing our own
        waits = self._pending_overlaps(inst, space)
        ops: list[TransferOp] = []
        for region, mode in self._regions(inst):
            if mode.reads:
                ops.extend(self.memory.ensure(region, space))
        transfer_total = sum(self._transfer_duration(op) for op in ops)
        pending = len(ops) + len(waits)
        if pending == 0:
            self._start_compute(inst, resource, space, 0.0)
            return

        arm = _ComputeArm(self, inst, resource, space, transfer_total, pending)
        for entry in waits:
            entry.waiters.append(arm)
        for op in ops:
            self._issue_transfer(op, on_complete=arm)

    def _issue_transfer(self, op: TransferOp, *, on_complete=None) -> None:
        duration = self._transfer_duration(op)
        direction = "h2d" if op.is_h2d else "d2h"
        self.transfer_bytes[direction] += op.nbytes
        # source-side hazard: data still being staged INTO the source space
        # (device -> host -> device chains) must land before this leg reads
        # it off
        src_waits = [
            e for e in self._inflight.get((op.array, op.src_space), ())
            if not e.done and e.start < op.end and op.start < e.end
        ]
        entry = _InflightTransfer(start=op.start, end=op.end)
        key = (op.array, op.dst_space)
        self._inflight.setdefault(key, []).append(entry)

        xfer = _Transfer(
            self, op, duration, direction, entry, key, on_complete,
            len(src_waits),
        )
        if not src_waits:
            xfer.start()
            return
        for upstream in src_waits:
            upstream.waiters.append(xfer)

    def _transfer_done(self, xfer: _Transfer) -> None:
        """The wire leg of ``xfer`` landed: publish and fire waiters."""
        entry = xfer.entry
        entry.done = True
        self._inflight[xfer.key].remove(entry)
        for waiter in entry.waiters:
            waiter()
        cb = xfer.on_complete
        if cb is not None:
            cb()

    def _start_compute(
        self,
        inst: TaskInstance,
        resource: ComputeResource,
        space: str,
        transfer_total: float,
    ) -> None:
        kernel = inst.kernel
        key = (id(kernel), resource.resource_id, inst.lo, inst.hi,
               inst.invocation.n)
        duration = self._duration_cache.get(key)
        if duration is None:
            duration = kernel.chunk_time(
                resource.device,
                kernel.work_units(inst.lo, inst.hi),
                inst.invocation.n,
                share=resource.share,
            ) + self.config.task_creation_overhead_s
            self._duration_cache[key] = duration
        if self.scheduler.dynamic and inst.pinned_resource is None \
                and inst.pinned_device is None:
            duration += self.config.dynamic_decision_overhead_s

        self.sim_resources[resource.resource_id].occupy(
            duration,
            label="",
            category="compute",
            on_complete=(
                self._complete_cb,
                (inst, resource, space, duration, transfer_total),
            ),
            lane=self.compute_lanes[resource.resource_id],
            args=(kernel.name, inst.lo, inst.hi, inst.instance_id),
            size=inst.size,
            kernel=kernel.name,
            meta={
                "kernel": kernel.name,
                "size": inst.size,
                "device_kind": resource.device.kind.value,
                "device": resource.device.device_id,
                "invocation": inst.invocation.invocation_id,
                "iteration": inst.invocation.iteration,
            },
            own_meta=True,
        )

    def _complete_compute(self, args: tuple) -> None:
        """Tuple-callback shim: unpack the prebound compute-completion args."""
        self._complete(*args)

    def _complete(
        self,
        inst: TaskInstance,
        resource: ComputeResource,
        space: str,
        compute_time: float,
        transfer_time: float,
    ) -> None:
        for region, mode in self._regions(inst):
            if mode.writes:
                self.memory.write(region, space)
        # an instance followed by a taskwait — explicit, or the program's
        # implicit final sync after the last invocation (only when the run
        # accounts for end-to-end readback at all) — reads its own results
        # back immediately, overlapping the flush with the other
        # processor's remaining compute
        faces_sync = inst.invocation is not None and (
            inst.invocation.sync_after
            or (
                self.config.final_flush
                and inst.invocation.invocation_id == self._last_invocation_id
            )
        )
        if (
            self.config.eager_writeback
            and faces_sync
            and space != HOST_SPACE
        ):
            for region, mode in self._regions(inst):
                if mode.writes:
                    for op in self.memory.writeback(region, space):
                        self._pending_writebacks += 1
                        self._issue_transfer(op, on_complete=self._writeback_done)
        self.inflight[resource.resource_id] -= 1
        self.scheduler.on_complete(
            inst,
            resource.resource_id,
            compute_time=compute_time,
            transfer_time=transfer_time,
        )
        self._mark_done(inst)

    def _writeback_done(self) -> None:
        self._pending_writebacks -= 1
        if self._pending_writebacks == 0 and self._wb_waiters:
            waiters, self._wb_waiters = self._wb_waiters, []
            for barrier in waiters:
                self._mark_done(barrier)

    def _barrier_overhead(self, inst: TaskInstance) -> float:
        """Quiescence cost of one ``taskwait``.

        A trailing barrier (no successors) is the program's exit sync:
        the thread team is torn down rather than restarted, so no
        quiescence is charged.  Shared by the event path below and the
        plan evaluator's wave drain, which models barriers analytically
        and must charge the identical float.
        """
        return self.config.barrier_overhead_s if inst.succs else 0.0

    def _run_barrier(self, inst: TaskInstance) -> None:
        ops = self.memory.flush_to_host(
            invalidate=self.config.barrier_invalidates_devices
        )
        # the quiescence overhead and the flush transfers proceed in
        # parallel; the barrier completes when both are over (and all
        # eager write-backs have landed on the host)
        overhead = self._barrier_overhead(inst)
        arm = _BarrierArm(self, inst, len(ops) + 1)
        self.sim.after(overhead, arm)
        for op in ops:
            self._issue_transfer(op, on_complete=arm)

    def _mark_done(self, inst: TaskInstance) -> None:
        self.done.add(inst.instance_id)
        for succ in sorted(inst.succs):
            self.remaining[succ] -= 1
            if self.remaining[succ] == 0:
                self.ready.append(self.graph.instances[succ])
        self._pump()

    def _final_flush(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        for op in self.memory.flush_to_host():
            self._issue_transfer(op)

    # -- result assembly --------------------------------------------------------

    def _result(self, detail: str) -> RunArtifact:
        summary = TraceSummary.from_store(self.trace.store)
        return RunArtifact(
            # a trailing barrier's quiescence is a pure event (no resource
            # occupation), so the clock — not just the trace — bounds the run
            makespan_s=max(summary.trace_makespan_s, self.sim.now),
            scheduler_name=self.scheduler.name,
            instance_count=len(self.graph.instances),
            summary=summary,
            transfer_bytes=dict(self.transfer_bytes),
            detail=detail,
            trace=self.trace if detail == "full" else None,
        )
