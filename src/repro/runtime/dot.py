"""Graphviz DOT export of task graphs (no graphviz dependency).

``to_dot`` renders a dependence-annotated task graph as DOT text —
instances grouped by invocation, barriers as diamonds, device pins as
colors — so a graph can be eyeballed with any DOT viewer.  Intended for
debugging strategy chunkers and for documentation figures.
"""

from __future__ import annotations

from repro.runtime.graph import InstanceKind, TaskGraph

#: fill colors per pin kind
_COLORS = {
    "gpu": "#79b6f2",
    "cpu": "#f2c879",
    "none": "#dddddd",
    "barrier": "#e0a0a0",
}


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def _fill(inst) -> str:
    if inst.kind is InstanceKind.BARRIER:
        return _COLORS["barrier"]
    if inst.pinned_device and not inst.pinned_device.startswith("cpu"):
        return _COLORS["gpu"]
    if inst.pinned_resource or (
        inst.pinned_device and inst.pinned_device.startswith("cpu")
    ):
        return _COLORS["cpu"]
    return _COLORS["none"]


def to_dot(graph: TaskGraph, *, name: str = "taskgraph",
           max_instances: int = 400) -> str:
    """Render ``graph`` as DOT text.

    Graphs larger than ``max_instances`` are truncated (with a marker
    node) — DOT layouts of thousand-node graphs are unreadable anyway.
    """
    lines = [
        f'digraph "{_escape(name)}" {{',
        "  rankdir=TB;",
        '  node [fontname="monospace", fontsize=9, style=filled];',
    ]
    shown = graph.instances[:max_instances]
    shown_ids = {i.instance_id for i in shown}

    # group compute instances per invocation
    by_invocation: dict[int, list] = {}
    barriers = []
    for inst in shown:
        if inst.kind is InstanceKind.COMPUTE:
            by_invocation.setdefault(
                inst.invocation.invocation_id, []
            ).append(inst)
        else:
            barriers.append(inst)

    for inv_id, instances in by_invocation.items():
        kernel = instances[0].kernel.name
        lines.append(f"  subgraph cluster_inv{inv_id} {{")
        lines.append(f'    label="inv {inv_id}: {_escape(kernel)}";')
        lines.append("    color=gray;")
        for inst in instances:
            label = f"{inst.instance_id}\\n[{inst.lo}:{inst.hi})"
            pin = inst.pinned_resource or inst.pinned_device
            if pin:
                label += f"\\n@{pin}"
            lines.append(
                f'    n{inst.instance_id} [label="{label}", shape=box, '
                f'fillcolor="{_fill(inst)}"];'
            )
        lines.append("  }")

    for inst in barriers:
        lines.append(
            f'  n{inst.instance_id} [label="taskwait {inst.instance_id}", '
            f'shape=diamond, fillcolor="{_fill(inst)}"];'
        )

    for inst in shown:
        for dep in sorted(inst.deps):
            if dep in shown_ids:
                lines.append(f"  n{dep} -> n{inst.instance_id};")

    if len(graph.instances) > max_instances:
        lines.append(
            f'  truncated [label="... {len(graph.instances) - max_instances}'
            ' more instances", shape=plaintext];'
        )
    lines.append("}")
    return "\n".join(lines)
