"""Multi-memory-space coherence model (the OmpSs memory directory).

Each accelerator has its own memory space; the host (CPU) memory is the home
of all data.  The directory tracks, per array, which element intervals are
*valid* in which space, and generates the minimal set of
:class:`TransferOp` needed before a task instance can run on a device:

* reading a region on a device requires every element of the region to be
  valid there; missing portions are fetched from the host (staging a flush
  from another device first when the host copy is stale — OmpSs-0.7-style
  host-centric coherence);
* writing a region on a device makes the device copy the only valid one
  (other spaces are invalidated);
* ``taskwait`` flushes every *dirty* interval (valid on a device but not on
  the host) back to the host; device copies remain valid.

This model is what makes the paper's strategy differences emerge: SP-Unified
pays one transfer in and one out, SP-Varied pays per-kernel flush traffic,
and dynamic strategies pay per-chunk transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryModelError
from repro.platform.topology import HOST_SPACE, Platform
from repro.runtime.regions import ArraySpec, IntervalSet, Region


@dataclass(frozen=True)
class TransferOp:
    """One host<->device data movement of a contiguous region."""

    array: str
    start: int
    end: int
    src_space: str
    dst_space: str
    nbytes: int

    @property
    def is_h2d(self) -> bool:
        return self.src_space == HOST_SPACE

    @property
    def is_d2h(self) -> bool:
        return self.dst_space == HOST_SPACE

    @property
    def device_space(self) -> str:
        """The non-host endpoint of the transfer."""
        return self.dst_space if self.is_h2d else self.src_space


class MemoryManager:
    """Validity directory over ``(array, memory space)`` pairs."""

    def __init__(self, platform: Platform, arrays: dict[str, ArraySpec]) -> None:
        self.platform = platform
        self.arrays = dict(arrays)
        self._spaces = platform.memory_spaces()
        # valid[array][space] -> IntervalSet of valid elements
        self._valid: dict[str, dict[str, IntervalSet]] = {}
        for name, spec in self.arrays.items():
            per_space = {space: IntervalSet() for space in self._spaces}
            # all data starts resident (and only valid) on the host
            per_space[HOST_SPACE].add(0, spec.n_elems)
            self._valid[name] = per_space

    # -- introspection -----------------------------------------------------

    def valid_intervals(self, array: str, space: str) -> IntervalSet:
        """Copy of the valid interval set of ``array`` in ``space``."""
        return self._entry(array, space).copy()

    def is_valid(self, array: str, space: str, start: int, end: int) -> bool:
        """Whether ``[start, end)`` of ``array`` is entirely valid in ``space``."""
        return self._entry(array, space).contains(start, end)

    def dirty_bytes(self) -> int:
        """Total bytes valid on some device but stale on the host."""
        total = 0
        for name, spec in self.arrays.items():
            host = self._valid[name][HOST_SPACE]
            stale = IntervalSet()
            for space in self._spaces:
                if space == HOST_SPACE:
                    continue
                for lo, hi in self._valid[name][space]:
                    for mlo, mhi in host.missing(lo, hi):
                        stale.add(mlo, mhi)
            total += stale.total * spec.elem_bytes
        return total

    def _entry(self, array: str, space: str) -> IntervalSet:
        try:
            return self._valid[array][space]
        except KeyError:
            raise MemoryModelError(
                f"unknown array {array!r} or space {space!r}"
            ) from None

    # -- coherence actions ---------------------------------------------------

    def ensure(self, region: Region, space: str) -> list[TransferOp]:
        """Make ``region`` valid in ``space``; returns the needed transfers.

        The returned ops are already applied to the directory (optimistic
        marking): callers time them on the simulated link, but a second
        reader of the same data will not schedule a duplicate transfer.
        """
        spec = self.arrays[region.array]
        entry = self._entry(region.array, space)
        missing = entry.missing(region.start, region.end)
        if not missing:
            return []
        ops: list[TransferOp] = []
        host = self._valid[region.array][HOST_SPACE]
        for lo, hi in missing:
            # stage through the host: flush any portion whose only valid
            # copy lives on another device
            for stale_lo, stale_hi in host.missing(lo, hi):
                owner = self._find_owner(region.array, stale_lo, stale_hi, exclude=space)
                if owner is None:
                    raise MemoryModelError(
                        f"no valid copy of {region.array}[{stale_lo}:{stale_hi}) "
                        "anywhere — directory corrupted"
                    )
                ops.append(
                    TransferOp(
                        array=region.array,
                        start=stale_lo,
                        end=stale_hi,
                        src_space=owner,
                        dst_space=HOST_SPACE,
                        nbytes=(stale_hi - stale_lo) * spec.elem_bytes,
                    )
                )
                host.add(stale_lo, stale_hi)
            if space != HOST_SPACE:
                ops.append(
                    TransferOp(
                        array=region.array,
                        start=lo,
                        end=hi,
                        src_space=HOST_SPACE,
                        dst_space=space,
                        nbytes=(hi - lo) * spec.elem_bytes,
                    )
                )
            entry.add(lo, hi)
        return ops

    def _find_owner(
        self, array: str, lo: int, hi: int, *, exclude: str
    ) -> str | None:
        for space in self._spaces:
            if space in (HOST_SPACE, exclude):
                continue
            if self._valid[array][space].contains(lo, hi):
                return space
        return None

    def write(self, region: Region, space: str) -> None:
        """Record that ``region`` was (re)written in ``space``.

        The writing space becomes the sole valid holder of the region.
        """
        for other in self._spaces:
            entry = self._valid[region.array][other]
            if other == space:
                entry.add(region.start, region.end)
            else:
                entry.remove(region.start, region.end)

    def writeback(self, region: Region, space: str) -> list[TransferOp]:
        """Eagerly copy ``region`` from ``space`` back to the host.

        Returns the D2H ops for the portions valid in ``space`` but stale
        on the host; the host is marked valid immediately (optimistic
        marking, like :meth:`ensure`).  Used for instances of invocations
        followed by a ``taskwait``: the producer starts its copy-back as
        soon as it finishes, overlapping the flush with the other
        processor's remaining compute — which is how the paper's static
        per-iteration splits beat single-device execution despite the
        synchronization.
        """
        if space == HOST_SPACE:
            return []
        spec = self.arrays[region.array]
        host = self._valid[region.array][HOST_SPACE]
        valid = self._valid[region.array][space].intersect(region.start, region.end)
        ops: list[TransferOp] = []
        for lo, hi in valid:
            for mlo, mhi in host.missing(lo, hi):
                ops.append(
                    TransferOp(
                        array=region.array,
                        start=mlo,
                        end=mhi,
                        src_space=space,
                        dst_space=HOST_SPACE,
                        nbytes=(mhi - mlo) * spec.elem_bytes,
                    )
                )
                host.add(mlo, mhi)
        return ops

    def flush_to_host(self, *, invalidate: bool = False) -> list[TransferOp]:
        """``taskwait`` semantics: copy all dirty data back to the host.

        With ``invalidate=False`` device copies stay valid (write-back
        only).  With ``invalidate=True`` — the OmpSs-0.7 behaviour the
        paper's runtime implements, where the taskwait "flushes data in
        different memories to the host" — the device caches are emptied
        after the write-back, so every kernel after a synchronization
        point re-fetches its device inputs.  This is the cost that makes
        SP-Varied expensive when the application did not need
        synchronization.  Returns the transfer ops, already applied.
        """
        ops: list[TransferOp] = []
        for name, spec in self.arrays.items():
            host = self._valid[name][HOST_SPACE]
            for space in self._spaces:
                if space == HOST_SPACE:
                    continue
                for lo, hi in self._valid[name][space].intervals:
                    for mlo, mhi in host.missing(lo, hi):
                        ops.append(
                            TransferOp(
                                array=name,
                                start=mlo,
                                end=mhi,
                                src_space=space,
                                dst_space=HOST_SPACE,
                                nbytes=(mhi - mlo) * spec.elem_bytes,
                            )
                        )
                        host.add(mlo, mhi)
        if invalidate:
            self.invalidate_device_copies()
        return ops

    def invalidate_device_copies(self) -> None:
        """Drop all device-resident copies (host must already be coherent).

        Used to model runtime shutdown/startup between independent runs.
        """
        for name, spec in self.arrays.items():
            if not self._valid[name][HOST_SPACE].contains(0, spec.n_elems):
                raise MemoryModelError(
                    f"cannot invalidate devices: host copy of {name!r} is stale"
                )
            for space in self._spaces:
                if space != HOST_SPACE:
                    self._valid[name][space].clear()
