"""OmpSs-like task runtime (simulated).

This package reproduces the programming/execution model the paper relies on:

* kernels annotated with data accesses (:mod:`repro.runtime.kernels`),
* expansion of kernel invocations into *task instances* — the unit of
  scheduling (:mod:`repro.runtime.graph`),
* region-based dependence analysis building a task dependency graph
  (:mod:`repro.runtime.dependence`),
* a multi-memory-space coherence model that generates host<->device
  transfers and implements ``taskwait`` flush semantics
  (:mod:`repro.runtime.memory`),
* pluggable schedulers — breadth-first with dependence-chain affinity
  (DP-Dep) and performance-aware earliest-finish (DP-Perf)
  (:mod:`repro.runtime.schedulers`),
* the executor that replays everything on the discrete-event simulator
  (:mod:`repro.runtime.executor`),
* a functional executor that runs the NumPy kernel bodies chunk-by-chunk to
  verify that partitioned execution is numerically equivalent to sequential
  execution (:mod:`repro.runtime.functional`).
"""

from repro.runtime.regions import AccessMode, ArraySpec, IntervalSet, Region
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.graph import (
    InstanceKind,
    KernelInvocation,
    Program,
    TaskGraph,
    TaskInstance,
)
from repro.runtime.dependence import build_dependences
from repro.runtime.memory import MemoryManager, TransferOp
from repro.runtime.executor import ExecutionResult, RuntimeConfig, RuntimeEngine

__all__ = [
    "AccessMode",
    "ArraySpec",
    "IntervalSet",
    "Region",
    "AccessPattern",
    "AccessSpec",
    "Kernel",
    "KernelCostModel",
    "InstanceKind",
    "KernelInvocation",
    "Program",
    "TaskGraph",
    "TaskInstance",
    "build_dependences",
    "MemoryManager",
    "TransferOp",
    "ExecutionResult",
    "RuntimeConfig",
    "RuntimeEngine",
]
