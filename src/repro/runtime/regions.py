"""Arrays, regions and interval arithmetic for dependence & coherence.

The runtime reasons about data at the granularity of *element ranges* of
named 1-D arrays (2-D data is linearized row-wise, matching the paper's
row-wise partitioning).  Two pieces of machinery live here:

* :class:`Region` — a half-open element range ``[start, end)`` of one array,
  used by dependence analysis (overlap tests) and the memory model.
* :class:`IntervalSet` — a set of disjoint sorted intervals with union /
  subtraction / intersection, used by the coherence directory to track which
  parts of an array are valid in which memory space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import DependenceError


class AccessMode(enum.Enum):
    """Data-access direction of a task on a region (OmpSs in/out/inout)."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.IN, AccessMode.INOUT)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.OUT, AccessMode.INOUT)


@dataclass(frozen=True)
class ArraySpec:
    """A named data array of ``n_elems`` elements of ``elem_bytes`` bytes."""

    name: str
    n_elems: int
    elem_bytes: int = 4

    def __post_init__(self) -> None:
        if self.n_elems < 0:
            raise DependenceError(f"array {self.name}: n_elems must be >= 0")
        if self.elem_bytes <= 0:
            raise DependenceError(f"array {self.name}: elem_bytes must be > 0")

    @property
    def nbytes(self) -> int:
        return self.n_elems * self.elem_bytes

    def full_region(self) -> "Region":
        """The region covering the whole array."""
        return Region(self.name, 0, self.n_elems)


@dataclass(frozen=True, slots=True)
class Region:
    """Half-open element range ``[start, end)`` of array ``array``."""

    array: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise DependenceError(
                f"invalid region [{self.start}, {self.end}) of {self.array!r}"
            )

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def empty(self) -> bool:
        return self.end <= self.start

    def overlaps(self, other: "Region") -> bool:
        """True when the two regions share at least one element."""
        return (
            self.array == other.array
            and self.start < other.end
            and other.start < self.end
        )

    def intersection(self, other: "Region") -> "Region | None":
        """The overlapping sub-region, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return Region(self.array, max(self.start, other.start), min(self.end, other.end))

    def nbytes(self, elem_bytes: int) -> int:
        return self.size * elem_bytes


class IntervalSet:
    """A set of disjoint, sorted half-open integer intervals.

    Supports the operations the coherence directory needs.  Intervals are
    normalized on every mutation: sorted, non-empty, non-adjacent (adjacent
    intervals are merged), so equality of contents implies equality of
    representation.
    """

    __slots__ = ("_ivals",)

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        self._ivals: list[tuple[int, int]] = []
        for lo, hi in intervals:
            self.add(lo, hi)

    # -- basics -----------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivals == other._ivals

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._ivals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntervalSet({self._ivals!r})"

    @property
    def intervals(self) -> list[tuple[int, int]]:
        """The disjoint sorted intervals (copy)."""
        return list(self._ivals)

    @property
    def total(self) -> int:
        """Total number of covered elements."""
        return sum(hi - lo for lo, hi in self._ivals)

    def copy(self) -> "IntervalSet":
        out = IntervalSet()
        out._ivals = list(self._ivals)
        return out

    # -- mutations ---------------------------------------------------------

    def add(self, lo: int, hi: int) -> None:
        """Union ``[lo, hi)`` into the set."""
        if hi <= lo:
            return
        out: list[tuple[int, int]] = []
        placed = False
        for a, b in self._ivals:
            if b < lo or a > hi:  # disjoint and non-adjacent
                if a > hi and not placed:
                    out.append((lo, hi))
                    placed = True
                out.append((a, b))
            else:  # overlapping or adjacent: merge
                lo, hi = min(lo, a), max(hi, b)
        if not placed:
            out.append((lo, hi))
        out.sort()
        self._ivals = out

    def remove(self, lo: int, hi: int) -> None:
        """Subtract ``[lo, hi)`` from the set."""
        if hi <= lo:
            return
        out: list[tuple[int, int]] = []
        for a, b in self._ivals:
            if b <= lo or a >= hi:
                out.append((a, b))
                continue
            if a < lo:
                out.append((a, lo))
            if b > hi:
                out.append((hi, b))
        self._ivals = out

    def clear(self) -> None:
        self._ivals = []

    # -- queries ------------------------------------------------------------

    def contains(self, lo: int, hi: int) -> bool:
        """True when ``[lo, hi)`` is fully covered."""
        if hi <= lo:
            return True
        for a, b in self._ivals:
            if a <= lo and hi <= b:
                return True
        return False

    def intersect(self, lo: int, hi: int) -> "IntervalSet":
        """The covered portions of ``[lo, hi)``."""
        out = IntervalSet()
        for a, b in self._ivals:
            x, y = max(a, lo), min(b, hi)
            if x < y:
                out.add(x, y)
        return out

    def missing(self, lo: int, hi: int) -> "IntervalSet":
        """The portions of ``[lo, hi)`` NOT covered by the set."""
        out = IntervalSet([(lo, hi)]) if hi > lo else IntervalSet()
        for a, b in self._ivals:
            out.remove(a, b)
        return out
