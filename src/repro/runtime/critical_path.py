"""Critical-path analysis: dependence-imposed lower bounds on makespan.

For any task graph, no schedule — on any number of devices — can beat the
longest dependence chain when every instance runs at its best possible
speed.  Two bounds are computed:

* :func:`critical_path_s` — the classic longest path over per-instance
  *best-device* times (transfers and overheads ignored: a true lower
  bound);
* :func:`work_bound_s` — total best-device work divided by the platform's
  aggregate best-case throughput (the "perfect parallelism" bound).

``max`` of the two bounds a schedule's makespan from below; the executor's
results are asserted against it in the property tests, and
``efficiency()`` expresses a measured run relative to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.topology import Platform
from repro.runtime.graph import InstanceKind, TaskGraph


def _best_time(inst, platform: Platform) -> float:
    """The instance's fastest possible execution on any whole device."""
    kernel = inst.kernel
    work = kernel.work_units(inst.lo, inst.hi)
    return min(
        kernel.chunk_time(
            device, work, inst.invocation.n, include_launch=False
        )
        for device in platform.devices
    )


def critical_path_s(graph: TaskGraph, platform: Platform) -> float:
    """Longest dependence chain at best-device speeds (seconds)."""
    finish: dict[int, float] = {}
    longest = 0.0
    for inst in graph.instances:  # creation order is topological
        start = max((finish[d] for d in inst.deps), default=0.0)
        duration = (
            0.0 if inst.kind is not InstanceKind.COMPUTE
            else _best_time(inst, platform)
        )
        finish[inst.instance_id] = start + duration
        longest = max(longest, finish[inst.instance_id])
    return longest


def work_bound_s(graph: TaskGraph, platform: Platform) -> float:
    """Total best-device work over aggregate capacity (seconds).

    Uses each instance's best-device time as its irreducible work and the
    device count as the parallelism cap — loose, but schedule-free.
    """
    total = sum(
        _best_time(inst, platform)
        for inst in graph.instances
        if inst.kind is InstanceKind.COMPUTE
    )
    return total / max(1, len(platform.devices))


@dataclass(frozen=True)
class BoundReport:
    """A measured makespan against its lower bounds."""

    makespan_s: float
    critical_path_s: float
    work_bound_s: float

    @property
    def lower_bound_s(self) -> float:
        return max(self.critical_path_s, self.work_bound_s)

    @property
    def efficiency(self) -> float:
        """lower bound / measured (1.0 = provably optimal)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.lower_bound_s / self.makespan_s


def bound_report(
    graph: TaskGraph, platform: Platform, makespan_s: float
) -> BoundReport:
    """Bundle a measured makespan with its dependence/work bounds."""
    return BoundReport(
        makespan_s=makespan_s,
        critical_path_s=critical_path_s(graph, platform),
        work_bound_s=work_bound_s(graph, platform),
    )
