"""Application characterization: the quantities that drive matchmaking.

The paper's classification uses kernel *structure*; its performance
arguments use kernel *character* — arithmetic intensity, transfer
footprint, and the two Glinda metrics.  This module computes both sides
for any application, giving the one-page summary a practitioner would
build before partitioning (and the reproduction's stand-in for the
workload study of ref [18]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import Application
from repro.core.analyzer import analyze
from repro.core.classes import AppClass
from repro.partition.profiling import profile_kernel, transfer_footprint
from repro.platform.topology import Platform


@dataclass(frozen=True)
class KernelCharacter:
    """Per-kernel characterization on a concrete platform."""

    kernel: str
    #: FLOPs per device-memory byte (the roofline x-axis)
    arithmetic_intensity: float
    #: host<->device bytes per kernel index (partitioned accesses)
    transfer_bytes_per_index: float
    #: Glinda metric r: GPU/CPU throughput ratio
    relative_capability: float
    #: Glinda metric g: GPU throughput vs link bandwidth (index units)
    compute_transfer_gap: float
    #: device-seconds per pass on CPU / on the accelerator (incl. transfer)
    cpu_time_s: float
    acc_time_s: float

    @property
    def transfer_bound(self) -> bool:
        """Whether moving the data costs more than computing it (g > 1)."""
        return self.compute_transfer_gap > 1.0


@dataclass(frozen=True)
class AppCharacter:
    """Whole-application characterization."""

    application: str
    app_class: AppClass
    needs_sync: bool
    best_strategy: str
    kernels: tuple[KernelCharacter, ...]

    @property
    def dominant_kernel(self) -> KernelCharacter:
        """The kernel with the largest best-device time."""
        return max(self.kernels, key=lambda k: min(k.cpu_time_s, k.acc_time_s))


def characterize(
    app: Application,
    platform: Platform,
    *,
    n: int | None = None,
    iterations: int | None = None,
) -> AppCharacter:
    """Characterize ``app`` on ``platform`` at (scaled) problem size."""
    report = analyze(app, n=n, iterations=iterations)
    program = app.program(n, iterations=iterations)
    link = platform.link_for(platform.accelerators[0].device_id)

    kernels = []
    seen: set[str] = set()
    for inv in program.invocations:
        kernel = inv.kernel
        if kernel.name in seen:
            continue
        seen.add(kernel.name)
        profile = profile_kernel(kernel, platform, inv.n)
        part_total, _, _, full = transfer_footprint(kernel)
        flops = kernel.cost.flops(1, inv.n)
        mem = kernel.cost.mem_bytes(1, inv.n)
        intensity = flops / mem if mem else float("inf")
        n_work = (
            kernel.total_work if kernel.imbalanced else float(inv.n)
        )
        cpu_time = n_work / profile.cpu_throughput
        acc_time = (
            n_work / profile.gpu_throughput
            + (part_total * inv.n + full) / link.bandwidth
        )
        kernels.append(
            KernelCharacter(
                kernel=kernel.name,
                arithmetic_intensity=intensity,
                transfer_bytes_per_index=part_total,
                relative_capability=(
                    profile.gpu_throughput / profile.cpu_throughput
                ),
                compute_transfer_gap=(
                    profile.gpu_throughput * part_total / link.bandwidth
                ),
                cpu_time_s=cpu_time,
                acc_time_s=acc_time,
            )
        )
    return AppCharacter(
        application=app.name,
        app_class=report.app_class,
        needs_sync=report.needs_sync,
        best_strategy=report.best_strategy,
        kernels=tuple(kernels),
    )


def format_characterization(chars: list[AppCharacter]) -> str:
    """A table across applications (one row per kernel)."""
    lines = [
        f"{'application':<14} {'class':<8} {'kernel':<12} "
        f"{'AI F/B':>8} {'tx B/idx':>9} {'r':>8} {'g':>8} {'best':<11}"
    ]
    for char in chars:
        for k in char.kernels:
            lines.append(
                f"{char.application:<14} {char.app_class.value:<8} "
                f"{k.kernel:<12} {k.arithmetic_intensity:>8.2f} "
                f"{k.transfer_bytes_per_index:>9.1f} "
                f"{k.relative_capability:>8.2f} "
                f"{k.compute_transfer_gap:>8.2f} {char.best_strategy:<11}"
            )
    return "\n".join(lines)
