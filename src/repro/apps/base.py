"""Application base class.

An :class:`Application` bundles everything the analyzer and the experiment
harness need about one workload:

* a :class:`~repro.runtime.graph.Program` factory (``program(...)``) with
  the paper's problem size and iteration count as defaults,
* NumPy input arrays for functional verification (``arrays(...)``),
* metadata: the class the paper assigns it (Table II) and whether it
  requires inter-kernel synchronization.

Calibration note (see DESIGN.md §5): the per-kernel/per-device efficiency
constants in the concrete applications are the only tuned numbers in the
reproduction.  CPU efficiencies are low throughout because the paper's CPU
task implementations are the *sequential* (unvectorized) kernels run on
``m`` threads, not hand-tuned SIMD code.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.kernels import Kernel


class Application(abc.ABC):
    """One benchmark application."""

    #: canonical name ("MatrixMul", "STREAM-Seq", ...)
    name: str = "?"
    #: the paper's class label ("SK-One" ... "MK-DAG"), cf. Table II
    paper_class: str = "?"
    #: whether the application requires/uses inter-kernel synchronization
    needs_sync: bool = False
    #: origin of the benchmark, as listed in Table II
    origin: str = "?"
    #: the paper's problem size (kernel indices)
    paper_n: int = 0
    #: the paper's iteration count (1 = single pass)
    paper_iterations: int = 1

    @abc.abstractmethod
    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        """Build the application's program.

        ``n`` defaults to the paper's problem size, ``iterations`` to the
        paper's iteration count, ``sync`` to the application's natural
        synchronization behaviour.
        """

    @abc.abstractmethod
    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        """NumPy input arrays for a problem of size ``n`` (flattened 1-D)."""

    # -- shared helpers ------------------------------------------------------

    def default_n(self, n: int | None) -> int:
        value = self.paper_n if n is None else n
        if value <= 0:
            raise ConfigurationError(f"{self.name}: problem size must be positive")
        return value

    def default_iterations(self, iterations: int | None) -> int:
        value = self.paper_iterations if iterations is None else iterations
        if value <= 0:
            raise ConfigurationError(f"{self.name}: iterations must be positive")
        return value

    @staticmethod
    def _loop_program(
        kernels_per_iteration,
        arrays,
        *,
        iterations: int,
        sync: bool,
    ) -> Program:
        """Unroll ``iterations`` passes of per-iteration kernel lists.

        ``kernels_per_iteration(it)`` returns the ordered ``(kernel, n)``
        pairs of iteration ``it``.  With ``sync`` every invocation is
        followed by a ``taskwait``; otherwise only program order and data
        dependences constrain execution.
        """
        invocations: list[KernelInvocation] = []
        next_id = 0
        for it in range(iterations):
            pairs: list[tuple[Kernel, int]] = list(kernels_per_iteration(it))
            for kernel, n in pairs:
                invocations.append(
                    KernelInvocation(
                        invocation_id=next_id,
                        kernel=kernel,
                        n=n,
                        iteration=it,
                        sync_after=sync,
                    )
                )
                next_id += 1
        return Program(invocations=invocations, arrays=arrays)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Application {self.name} ({self.paper_class})>"
