"""MatrixMul: dense matrix-matrix multiplication (SK-One, Nvidia OpenCL SDK).

``C = A x B`` with square ``N x N`` single-precision matrices; the paper
evaluates ``N = 6144`` (the three matrices total ~0.4 GB).  Partitioning is
row-wise: "each task instance receives multiple consecutive rows of A and
the full B, and performs the computation for corresponding rows of C"
(paper §IV-B1) — so the kernel index space is the row index, A and C are
PARTITIONED accesses with ``N`` elements per index, and B is a FULL access.

Calibration: the paper's CPU task is the sequential triple loop (ICC -O3,
no blocking/SIMD — a few % of peak) and the GPU task is the SDK's naive
OpenCL kernel (~8% of K20 peak).  These efficiencies land Only-CPU ~20 s
and Only-GPU ~1.7 s at N = 6144 with a ~90/10 optimal split, matching
Figs. 5a/6.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.platform.device import DeviceKind
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec
from repro.units import FLOAT32_BYTES

#: fraction of peak FLOPS the sequential CPU code sustains
CPU_COMPUTE_EFF = 0.060
#: fraction of peak FLOPS the naive OpenCL kernel sustains
GPU_COMPUTE_EFF = 0.080
CPU_MEM_EFF = 0.60
GPU_MEM_EFF = 0.60


def _matmul_impl(arrays: dict[str, np.ndarray], lo: int, hi: int, n: int, *, cols: int) -> None:
    """Compute rows ``[lo, hi)`` of ``C = A @ B`` (flattened row-major)."""
    a = arrays["A"].reshape(n, cols)
    b = arrays["B"].reshape(cols, cols)
    c = arrays["C"].reshape(n, cols)
    c[lo:hi, :] = a[lo:hi, :] @ b


class MatrixMul(Application):
    """Row-partitioned dense GEMM."""

    name = "MatrixMul"
    paper_class = "SK-One"
    needs_sync = False
    origin = "Nvidia OpenCL SDK"
    paper_n = 6144  # rows (matrices are paper_n x paper_n)
    paper_iterations = 1

    def _kernel(self, n: int) -> tuple[Kernel, dict[str, ArraySpec]]:
        elems = n * n
        a = ArraySpec("A", elems, FLOAT32_BYTES)
        b = ArraySpec("B", elems, FLOAT32_BYTES)
        c = ArraySpec("C", elems, FLOAT32_BYTES)
        cost = KernelCostModel(
            flops_per_elem=2.0 * n * n,  # 2N^2 FLOPs per row of C
            # per-row device-memory traffic: the A row, the C row, and B
            # streamed once per row block (cache reuse folded into eff)
            mem_bytes_per_elem=3.0 * n * FLOAT32_BYTES,
            compute_eff={
                DeviceKind.CPU: CPU_COMPUTE_EFF,
                DeviceKind.GPU: GPU_COMPUTE_EFF,
            },
            mem_eff={DeviceKind.CPU: CPU_MEM_EFF, DeviceKind.GPU: GPU_MEM_EFF},
        )
        kernel = Kernel(
            name="matrixMul",
            cost=cost,
            accesses=(
                AccessSpec(a, AccessMode.IN, AccessPattern.PARTITIONED, n),
                AccessSpec(b, AccessMode.IN, AccessPattern.FULL),
                AccessSpec(c, AccessMode.OUT, AccessPattern.PARTITIONED, n),
            ),
            impl=_matmul_impl,
            params={"cols": n},
        )
        return kernel, {"A": a, "B": b, "C": c}

    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        n = self.default_n(n)
        iterations = self.default_iterations(iterations)
        sync = self.needs_sync if sync is None else sync
        kernel, arrays = self._kernel(n)
        return self._loop_program(
            lambda it: [(kernel, n)], arrays, iterations=iterations, sync=sync
        )

    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            "A": rng.standard_normal(n * n).astype(np.float32),
            "B": rng.standard_normal(n * n).astype(np.float32),
            "C": np.zeros(n * n, dtype=np.float32),
        }

    @staticmethod
    def reference(arrays: dict[str, np.ndarray], n: int) -> np.ndarray:
        """Sequential NumPy reference for the full product."""
        return (arrays["A"].reshape(n, n) @ arrays["B"].reshape(n, n)).ravel()
