"""Nbody: particle simulation (SK-Loop, Mont-Blanc benchmark suite).

A single kernel advances the bodies one time step per loop iteration; "the
computation output of one iteration is the input of the next iteration",
with a global synchronization after each iteration combining the outputs at
the host (paper §IV-B2).  The paper simulates 1,048,576 bodies (~64 MB of
state: position+mass and velocity, double-buffered float4s).

Double buffering: even iterations read ``pos_a``/``vel_a`` and write
``pos_b``/``vel_b``, odd iterations the reverse.  Both directions use the
same kernel *name* so the application remains single-kernel (SK-Loop);
every chunk reads ALL positions (a FULL access) and writes its own bodies.

Cost-model note: a literal all-pairs O(n^2) step over 1 M bodies is orders
of magnitude beyond the paper's reported times on a K20, so — like the
Mont-Blanc implementation, which blocks the interaction loop — the model
charges a fixed interaction budget per body per iteration
(:data:`INTERACTIONS_PER_BODY`).  The NumPy body used for functional tests
is exact all-pairs (tests run at small ``n``).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.platform.device import DeviceKind
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec
from repro.units import FLOAT32_BYTES

#: interaction budget per body per iteration (blocked/cut-off loop)
INTERACTIONS_PER_BODY = 4096
#: flops per interaction (distances, rsqrt, accumulate)
FLOPS_PER_INTERACTION = 20.0
#: softening factor of the force computation
SOFTENING = 1e-3
#: integration time step
DT = 0.01

CPU_COMPUTE_EFF = 0.205  # sequential scalar inner loop with sqrt/div
GPU_COMPUTE_EFF = 0.55   # the classic GPU-friendly kernel
CPU_MEM_EFF = 0.60
GPU_MEM_EFF = 0.60


def _nbody_impl(
    arrays: dict[str, np.ndarray], lo: int, hi: int, n: int,
    *, src: str, dst: str, dt: float, softening: float,
) -> None:
    """All-pairs gravity step for bodies ``[lo, hi)`` (float64 internally)."""
    pos = arrays[f"pos_{src}"].reshape(n, 4).astype(np.float64)
    vel = arrays[f"vel_{src}"].reshape(n, 4).astype(np.float64)
    xyz = pos[:, :3]
    mass = pos[:, 3]
    chunk = xyz[lo:hi]
    # pairwise displacement: (hi-lo, n, 3)
    d = xyz[None, :, :] - chunk[:, None, :]
    dist2 = np.sum(d * d, axis=2) + softening
    inv_d3 = dist2 ** -1.5
    acc = np.einsum("ijk,ij,j->ik", d, inv_d3, mass)
    new_vel = vel[lo:hi].copy()
    new_vel[:, :3] += dt * acc
    new_pos = pos[lo:hi].copy()
    new_pos[:, :3] += dt * new_vel[:, :3]
    arrays[f"pos_{dst}"].reshape(n, 4)[lo:hi] = new_pos.astype(np.float32)
    arrays[f"vel_{dst}"].reshape(n, 4)[lo:hi] = new_vel.astype(np.float32)


class Nbody(Application):
    """Iterated particle simulation with per-iteration host sync."""

    name = "Nbody"
    paper_class = "SK-Loop"
    needs_sync = True  # per-iteration output combination at the host
    origin = "Mont-Blanc benchmark suite"
    paper_n = 1_048_576
    paper_iterations = 4

    def _kernels(self, n: int) -> tuple[dict[str, Kernel], dict[str, ArraySpec]]:
        specs = {
            name: ArraySpec(name, 4 * n, FLOAT32_BYTES)
            for name in ("pos_a", "vel_a", "pos_b", "vel_b")
        }
        cost = KernelCostModel(
            flops_per_elem=FLOPS_PER_INTERACTION * INTERACTIONS_PER_BODY,
            # per body: stream the interaction tiles + write own state
            mem_bytes_per_elem=float(INTERACTIONS_PER_BODY * FLOAT32_BYTES // 8
                                     + 8 * FLOAT32_BYTES),
            compute_eff={
                DeviceKind.CPU: CPU_COMPUTE_EFF,
                DeviceKind.GPU: GPU_COMPUTE_EFF,
            },
            mem_eff={DeviceKind.CPU: CPU_MEM_EFF, DeviceKind.GPU: GPU_MEM_EFF},
        )

        def step(src: str, dst: str) -> Kernel:
            return Kernel(
                name="nbodyStep",
                cost=cost,
                accesses=(
                    AccessSpec(specs[f"pos_{src}"], AccessMode.IN,
                               AccessPattern.FULL),
                    AccessSpec(specs[f"vel_{src}"], AccessMode.IN,
                               AccessPattern.PARTITIONED, 4),
                    AccessSpec(specs[f"pos_{dst}"], AccessMode.OUT,
                               AccessPattern.PARTITIONED, 4),
                    AccessSpec(specs[f"vel_{dst}"], AccessMode.OUT,
                               AccessPattern.PARTITIONED, 4),
                ),
                impl=_nbody_impl,
                params={"src": src, "dst": dst, "dt": DT, "softening": SOFTENING},
            )

        return {"even": step("a", "b"), "odd": step("b", "a")}, specs

    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        n = self.default_n(n)
        iterations = self.default_iterations(iterations)
        sync = self.needs_sync if sync is None else sync
        kernels, arrays = self._kernels(n)

        def per_iteration(it: int):
            return [(kernels["even" if it % 2 == 0 else "odd"], n)]

        return self._loop_program(
            per_iteration, arrays, iterations=iterations, sync=sync
        )

    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        pos = rng.uniform(-1.0, 1.0, (n, 4)).astype(np.float32)
        pos[:, 3] = rng.uniform(0.5, 2.0, n).astype(np.float32)  # masses
        vel = np.zeros((n, 4), dtype=np.float32)
        return {
            "pos_a": pos.ravel().copy(),
            "vel_a": vel.ravel().copy(),
            "pos_b": np.zeros(4 * n, dtype=np.float32),
            "vel_b": np.zeros(4 * n, dtype=np.float32),
        }

    @staticmethod
    def momentum(arrays: dict[str, np.ndarray], n: int, buffer: str = "a") -> np.ndarray:
        """Total momentum vector (conserved by symmetric forces)."""
        pos = arrays[f"pos_{buffer}"].reshape(n, 4).astype(np.float64)
        vel = arrays[f"vel_{buffer}"].reshape(n, 4).astype(np.float64)
        return (pos[:, 3:4] * vel[:, :3]).sum(axis=0)
