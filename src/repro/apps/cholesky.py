"""Blocked Cholesky factorization (MK-DAG extension).

The paper excludes MK-DAG applications from its static-vs-dynamic
comparison (static partitioning is not applicable to a dynamic DAG flow)
and refers to [20] for the DP-Dep vs DP-Perf comparison.  This application
supplies that missing workload: the right-looking blocked Cholesky
``A = L L^T`` over a ``T x T`` grid of ``b x b`` tiles, with the classic
four-kernel DAG:

* ``potrf(k)``  — factorize diagonal tile ``(k, k)``
* ``trsm(i, k)`` — triangular solve of tile ``(i, k)``, ``i > k``
* ``syrk(i, k)`` — symmetric update of diagonal tile ``(i, i)``
* ``gemm(i, j, k)`` — update of tile ``(i, j)``, ``i > j > k``

Each tile is its own array, each tile operation is one single-index kernel
invocation, and the task DAG emerges from the tile data dependences — so
the classifier sees incomparable invocations and labels the application
MK-DAG, and only the dynamic strategies apply.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.errors import ConfigurationError
from repro.platform.device import DeviceKind
from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec
from repro.units import FLOAT32_BYTES

CPU_COMPUTE_EFF = 0.10
GPU_COMPUTE_EFF = 0.15
CPU_MEM_EFF = 0.60
GPU_MEM_EFF = 0.60


def _tile(arrays: dict[str, np.ndarray], name: str, b: int) -> np.ndarray:
    return arrays[name].reshape(b, b)


def _potrf_impl(arrays, lo, hi, n, *, tile: str, b: int) -> None:
    a = _tile(arrays, tile, b).astype(np.float64)
    arrays[tile][:] = np.linalg.cholesky(a).astype(np.float32).ravel()


def _trsm_impl(arrays, lo, hi, n, *, diag: str, tile: str, b: int) -> None:
    l_kk = np.tril(_tile(arrays, diag, b).astype(np.float64))
    a_ik = _tile(arrays, tile, b).astype(np.float64)
    # A_ik <- A_ik * L_kk^{-T}
    arrays[tile][:] = np.linalg.solve(l_kk, a_ik.T).T.astype(np.float32).ravel()


def _syrk_impl(arrays, lo, hi, n, *, src: str, tile: str, b: int) -> None:
    l_ik = _tile(arrays, src, b).astype(np.float64)
    a_ii = _tile(arrays, tile, b).astype(np.float64)
    arrays[tile][:] = (a_ii - l_ik @ l_ik.T).astype(np.float32).ravel()


def _gemm_impl(arrays, lo, hi, n, *, src_i: str, src_j: str, tile: str, b: int) -> None:
    l_ik = _tile(arrays, src_i, b).astype(np.float64)
    l_jk = _tile(arrays, src_j, b).astype(np.float64)
    a_ij = _tile(arrays, tile, b).astype(np.float64)
    arrays[tile][:] = (a_ij - l_ik @ l_jk.T).astype(np.float32).ravel()


class Cholesky(Application):
    """Tiled Cholesky factorization; ``n`` is the number of tile rows."""

    name = "Cholesky"
    paper_class = "MK-DAG"
    needs_sync = False
    origin = "extension (cf. paper ref [20])"
    paper_n = 8       # tiles per dimension
    paper_iterations = 1

    def __init__(self, tile_size: int = 1024) -> None:
        """``tile_size`` is ``b``, the elements per tile edge."""
        if tile_size <= 0:
            raise ConfigurationError("tile_size must be positive")
        self.tile_size = tile_size

    def _specs(self, t: int, b: int) -> dict[str, ArraySpec]:
        return {
            f"tile_{i}_{j}": ArraySpec(f"tile_{i}_{j}", b * b, FLOAT32_BYTES)
            for i in range(t)
            for j in range(i + 1)
        }

    def _cost(self, flops: float, b: int) -> KernelCostModel:
        return KernelCostModel(
            flops_per_elem=flops,
            mem_bytes_per_elem=float(3 * b * b * FLOAT32_BYTES),
            compute_eff={
                DeviceKind.CPU: CPU_COMPUTE_EFF,
                DeviceKind.GPU: GPU_COMPUTE_EFF,
            },
            mem_eff={DeviceKind.CPU: CPU_MEM_EFF, DeviceKind.GPU: GPU_MEM_EFF},
        )

    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        t = self.default_n(n)
        if iterations not in (None, 1):
            raise ConfigurationError("Cholesky is a single factorization")
        b = self.tile_size
        specs = self._specs(t, b)
        invocations: list[KernelInvocation] = []
        next_id = 0

        def emit(kernel: Kernel) -> None:
            nonlocal next_id
            invocations.append(
                KernelInvocation(
                    invocation_id=next_id, kernel=kernel, n=1, sync_after=False
                )
            )
            next_id += 1

        def spec(i: int, j: int) -> ArraySpec:
            return specs[f"tile_{i}_{j}"]

        for k in range(t):
            emit(Kernel(
                "potrf",
                self._cost(b**3 / 3.0, b),
                (AccessSpec(spec(k, k), AccessMode.INOUT,
                            AccessPattern.PARTITIONED, b * b),),
                impl=_potrf_impl,
                params={"tile": f"tile_{k}_{k}", "b": b},
            ))
            for i in range(k + 1, t):
                emit(Kernel(
                    "trsm",
                    self._cost(float(b**3), b),
                    (
                        AccessSpec(spec(k, k), AccessMode.IN,
                                   AccessPattern.FULL),
                        AccessSpec(spec(i, k), AccessMode.INOUT,
                                   AccessPattern.PARTITIONED, b * b),
                    ),
                    impl=_trsm_impl,
                    params={"diag": f"tile_{k}_{k}", "tile": f"tile_{i}_{k}",
                            "b": b},
                ))
            for i in range(k + 1, t):
                emit(Kernel(
                    "syrk",
                    self._cost(float(b**3), b),
                    (
                        AccessSpec(spec(i, k), AccessMode.IN,
                                   AccessPattern.FULL),
                        AccessSpec(spec(i, i), AccessMode.INOUT,
                                   AccessPattern.PARTITIONED, b * b),
                    ),
                    impl=_syrk_impl,
                    params={"src": f"tile_{i}_{k}", "tile": f"tile_{i}_{i}",
                            "b": b},
                ))
                for j in range(k + 1, i):
                    emit(Kernel(
                        "gemm",
                        self._cost(2.0 * b**3, b),
                        (
                            AccessSpec(spec(i, k), AccessMode.IN,
                                       AccessPattern.FULL),
                            AccessSpec(spec(j, k), AccessMode.IN,
                                       AccessPattern.FULL),
                            AccessSpec(spec(i, j), AccessMode.INOUT,
                                       AccessPattern.PARTITIONED, b * b),
                        ),
                        impl=_gemm_impl,
                        params={"src_i": f"tile_{i}_{k}",
                                "src_j": f"tile_{j}_{k}",
                                "tile": f"tile_{i}_{j}", "b": b},
                    ))
        return Program(invocations=invocations, arrays=specs)

    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        """A random SPD matrix, stored tile by tile (lower triangle)."""
        t = n
        b = self.tile_size
        rng = np.random.default_rng(seed)
        m = rng.standard_normal((t * b, t * b))
        spd = (m @ m.T + t * b * np.eye(t * b)).astype(np.float32)
        out: dict[str, np.ndarray] = {}
        for i in range(t):
            for j in range(i + 1):
                out[f"tile_{i}_{j}"] = np.ascontiguousarray(
                    spd[i * b:(i + 1) * b, j * b:(j + 1) * b]
                ).ravel()
        return out

    @staticmethod
    def assemble_lower(arrays: dict[str, np.ndarray], t: int, b: int) -> np.ndarray:
        """Reassemble the factor ``L`` from the tiles (upper zeroed)."""
        full = np.zeros((t * b, t * b), dtype=np.float64)
        for i in range(t):
            for j in range(i + 1):
                tile = arrays[f"tile_{i}_{j}"].reshape(b, b).astype(np.float64)
                if i == j:
                    tile = np.tril(tile)
                full[i * b:(i + 1) * b, j * b:(j + 1) * b] = tile
        return full
