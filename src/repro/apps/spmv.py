"""SpMV: CSR sparse matrix-vector multiply (imbalanced SK-One extension).

The paper's Glinda lineage (ref [9], ICS'14) targets *imbalanced*
workloads, where per-index work varies with the data — there an acoustic
ray tracer; here the canonical imbalanced kernel, ``y = A x`` over a CSR
matrix whose row lengths follow a heavy-tailed distribution.  The kernel
carries a work-prefix (row-pointer) array, so:

* SP-Single switches to the boundary-search splitter
  (:mod:`repro.partition.imbalanced`) and divides the CPU share into
  equal-*work* thread ranges;
* the CSR value/column arrays are PREFIX accesses — a chunk's transfer
  volume is its nonzero count, not its row count.

Row lengths are generated deterministically from the problem size, so the
same ``n`` always yields the same matrix structure.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.platform.device import DeviceKind
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec
from repro.units import FLOAT32_BYTES

#: mean nonzeros per row of the generated matrices
MEAN_NNZ_PER_ROW = 16
#: Pareto tail exponent of the row-length distribution (heavy tail)
TAIL_ALPHA = 1.6

CPU_COMPUTE_EFF = 0.08   # scalar gather-heavy inner loop
GPU_COMPUTE_EFF = 0.12   # CSR-vector style kernel
CPU_MEM_EFF = 0.35       # irregular access pattern
GPU_MEM_EFF = 0.45


def row_lengths(n: int) -> np.ndarray:
    """Deterministic heavy-tailed row lengths for an ``n``-row matrix.

    Rows are ordered by decreasing degree — the layout degree-based
    reorderings produce — so the work is *spatially* skewed: the first
    rows are orders of magnitude heavier than the last.  This is the
    regime where index-balanced partitioning fails and ref [9]'s
    work-balanced partitioning matters.
    """
    rng = np.random.default_rng(0xC5A + n)
    raw = rng.pareto(TAIL_ALPHA, n) + 1.0
    lengths = np.minimum(
        np.round(raw * MEAN_NNZ_PER_ROW / np.mean(raw)).astype(np.int64),
        n,
    )
    return -np.sort(-np.maximum(lengths, 1))


class SpMV(Application):
    """Row-partitioned CSR sparse matrix-vector product."""

    name = "SpMV"
    paper_class = "SK-One"
    needs_sync = False
    origin = "extension (imbalanced workloads, cf. paper ref [9])"
    paper_n = 2_097_152  # rows (~33.6 M nonzeros)
    paper_iterations = 1

    def _structure(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        lengths = row_lengths(n)
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=row_ptr[1:])
        return lengths, row_ptr

    def _kernel(self, n: int) -> tuple[Kernel, dict[str, ArraySpec]]:
        _, row_ptr = self._structure(n)
        nnz = int(row_ptr[-1])
        specs = {
            "vals": ArraySpec("vals", nnz, FLOAT32_BYTES),
            "cols": ArraySpec("cols", nnz, FLOAT32_BYTES),  # int32 indices
            "row_ptr": ArraySpec("row_ptr", n + 1, FLOAT32_BYTES),
            "x": ArraySpec("x", n, FLOAT32_BYTES),
            "y": ArraySpec("y", n, FLOAT32_BYTES),
        }
        cost = KernelCostModel(
            flops_per_elem=2.0,                     # per nonzero (work unit)
            mem_bytes_per_elem=3.0 * FLOAT32_BYTES,  # val + col + gathered x
            compute_eff={
                DeviceKind.CPU: CPU_COMPUTE_EFF,
                DeviceKind.GPU: GPU_COMPUTE_EFF,
            },
            mem_eff={DeviceKind.CPU: CPU_MEM_EFF, DeviceKind.GPU: GPU_MEM_EFF},
        )
        kernel = Kernel(
            name="spmv",
            cost=cost,
            accesses=(
                AccessSpec(specs["vals"], AccessMode.IN,
                           AccessPattern.PREFIX, prefix=row_ptr),
                AccessSpec(specs["cols"], AccessMode.IN,
                           AccessPattern.PREFIX, prefix=row_ptr),
                AccessSpec(specs["row_ptr"], AccessMode.IN),
                AccessSpec(specs["x"], AccessMode.IN, AccessPattern.FULL),
                AccessSpec(specs["y"], AccessMode.OUT),
            ),
            impl=_spmv_impl,
            params={"n_rows": n},
            work_prefix=row_ptr.astype(np.float64),
        )
        return kernel, specs

    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        n = self.default_n(n)
        iterations = self.default_iterations(iterations)
        sync = self.needs_sync if sync is None else sync
        kernel, arrays = self._kernel(n)
        return self._loop_program(
            lambda it: [(kernel, n)], arrays, iterations=iterations, sync=sync
        )

    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        _, row_ptr = self._structure(n)
        nnz = int(row_ptr[-1])
        rng = np.random.default_rng(seed)
        # column indices: valid, sorted within a row not required
        cols = rng.integers(0, n, nnz).astype(np.int32)
        return {
            "vals": rng.standard_normal(nnz).astype(np.float32),
            "cols": cols,
            "row_ptr": row_ptr.astype(np.int64),
            "x": rng.standard_normal(n).astype(np.float32),
            "y": np.zeros(n, dtype=np.float32),
        }

    @staticmethod
    def reference(arrays: dict[str, np.ndarray], n: int) -> np.ndarray:
        """Dense-reconstruction reference product (small ``n`` only)."""
        row_ptr = arrays["row_ptr"]
        y = np.zeros(n, dtype=np.float64)
        x = arrays["x"].astype(np.float64)
        vals = arrays["vals"].astype(np.float64)
        cols = arrays["cols"]
        for i in range(n):
            lo, hi = int(row_ptr[i]), int(row_ptr[i + 1])
            y[i] = np.dot(vals[lo:hi], x[cols[lo:hi]])
        return y.astype(np.float32)


def _spmv_impl(arrays: dict[str, np.ndarray], lo: int, hi: int, n: int,
               *, n_rows: int) -> None:
    row_ptr = arrays["row_ptr"]
    vals = arrays["vals"].astype(np.float64)
    cols = arrays["cols"]
    x = arrays["x"].astype(np.float64)
    start, end = int(row_ptr[lo]), int(row_ptr[hi])
    products = vals[start:end] * x[cols[start:end]]
    # segment-sum the products back to rows
    offsets = row_ptr[lo:hi].astype(np.int64) - start
    sums = np.add.reduceat(products, offsets) if len(products) else \
        np.zeros(hi - lo)
    # reduceat quirk: empty rows repeat the next segment; fix them up
    lengths = np.diff(row_ptr[lo:hi + 1].astype(np.int64))
    sums = np.where(lengths > 0, sums, 0.0)
    arrays["y"][lo:hi] = sums.astype(np.float32)
