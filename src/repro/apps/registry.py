"""Application registry: the paper's Table II plus extensions."""

from __future__ import annotations

from typing import Callable

from repro.apps.base import Application
from repro.apps.blackscholes import BlackScholes
from repro.apps.cholesky import Cholesky
from repro.apps.hotspot import HotSpot
from repro.apps.matrixmul import MatrixMul
from repro.apps.nbody import Nbody
from repro.apps.fdtd import FDTD
from repro.apps.spmv import SpMV
from repro.apps.stream import StreamLoop, StreamSeq
from repro.errors import ConfigurationError

_FACTORIES: dict[str, Callable[[], Application]] = {
    MatrixMul.name: MatrixMul,
    BlackScholes.name: BlackScholes,
    Nbody.name: Nbody,
    HotSpot.name: HotSpot,
    StreamSeq.name: StreamSeq,
    StreamLoop.name: StreamLoop,
    Cholesky.name: Cholesky,
    SpMV.name: SpMV,
    FDTD.name: FDTD,
}

#: the six evaluation applications, in Table II order
PAPER_ORDER = (
    MatrixMul.name,
    BlackScholes.name,
    Nbody.name,
    HotSpot.name,
    StreamSeq.name,
    StreamLoop.name,
)


def get_application(name: str) -> Application:
    """Instantiate an application by its canonical name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown application {name!r}; known: {sorted(_FACTORIES)}"
        ) from None


def paper_applications() -> list[Application]:
    """The six Table II applications, in the paper's order."""
    return [get_application(name) for name in PAPER_ORDER]


def all_applications() -> list[Application]:
    """Every registered application, Table II first."""
    extra = sorted(set(_FACTORIES) - set(PAPER_ORDER))
    return [get_application(name) for name in (*PAPER_ORDER, *extra)]
