"""FDTD: 1-D finite-difference time-domain electromagnetics (MK-Loop).

A second genuine MK-Loop workload (beyond STREAM-Loop): every time step
updates the electric field from the magnetic field's spatial derivative and
then the magnetic field from the updated electric field — two *different*
kernels alternating in a loop, chained by halo-read dependences rather than
host synchronization.  This is the structure the paper's Class IV targets
with SP-Unified: no taskwait is needed, data stays resident on each device,
and only the halo columns at the partition boundary cross the link each
step.

The Yee update (1-D, normalized units, Mur-style fixed boundaries):

    E[i] += c * (H[i] - H[i-1])
    H[i] += c * (E[i+1] - E[i])
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.platform.device import DeviceKind
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec
from repro.units import FLOAT32_BYTES

#: Courant number of the normalized update
COURANT = 0.5

CPU_COMPUTE_EFF = 0.15
GPU_COMPUTE_EFF = 0.30
CPU_MEM_EFF = 0.60
GPU_MEM_EFF = 0.70


def _update_e_impl(arrays, lo, hi, n, *, c):
    e = arrays["ez"]
    h = arrays["hy"]
    lo_i = max(lo, 1)  # fixed left boundary
    e[lo_i:hi] = e[lo_i:hi] + c * (h[lo_i:hi] - h[lo_i - 1:hi - 1])


def _update_h_impl(arrays, lo, hi, n, *, c):
    e = arrays["ez"]
    h = arrays["hy"]
    hi_i = min(hi, n - 1)  # fixed right boundary
    h[lo:hi_i] = h[lo:hi_i] + c * (e[lo + 1:hi_i + 1] - e[lo:hi_i])


class FDTD(Application):
    """Alternating E/H field updates over a 1-D grid."""

    name = "FDTD"
    paper_class = "MK-Loop"
    needs_sync = False  # halo dependences order the kernels, not taskwaits
    origin = "extension (Yee scheme, cf. Parboil/SHOC stencils)"
    paper_n = 33_554_432  # grid points (~256 MB of field state)
    paper_iterations = 10

    def _kernels(self, n: int) -> tuple[list[Kernel], dict[str, ArraySpec]]:
        specs = {
            "ez": ArraySpec("ez", n, FLOAT32_BYTES),
            "hy": ArraySpec("hy", n, FLOAT32_BYTES),
        }
        cost = KernelCostModel(
            flops_per_elem=3.0,
            mem_bytes_per_elem=3.0 * FLOAT32_BYTES,
            compute_eff={
                DeviceKind.CPU: CPU_COMPUTE_EFF,
                DeviceKind.GPU: GPU_COMPUTE_EFF,
            },
            mem_eff={DeviceKind.CPU: CPU_MEM_EFF, DeviceKind.GPU: GPU_MEM_EFF},
        )
        update_e = Kernel(
            "updateE",
            cost,
            (
                AccessSpec(specs["hy"], AccessMode.IN, halo=1),
                AccessSpec(specs["ez"], AccessMode.INOUT),
            ),
            impl=_update_e_impl,
            params={"c": COURANT},
        )
        update_h = Kernel(
            "updateH",
            cost,
            (
                AccessSpec(specs["ez"], AccessMode.IN, halo=1),
                AccessSpec(specs["hy"], AccessMode.INOUT),
            ),
            impl=_update_h_impl,
            params={"c": COURANT},
        )
        return [update_e, update_h], specs

    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        n = self.default_n(n)
        iterations = self.default_iterations(iterations)
        sync = self.needs_sync if sync is None else sync
        kernels, arrays = self._kernels(n)
        return self._loop_program(
            lambda it: [(k, n) for k in kernels],
            arrays,
            iterations=iterations,
            sync=sync,
        )

    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        """A Gaussian pulse in the middle of an otherwise quiet grid."""
        x = np.arange(n, dtype=np.float64)
        centre, width = n / 2.0, max(n / 50.0, 2.0)
        ez = np.exp(-(((x - centre) / width) ** 2)).astype(np.float32)
        return {"ez": ez, "hy": np.zeros(n, dtype=np.float32)}

    @staticmethod
    def field_energy(arrays: dict[str, np.ndarray]) -> float:
        """Total field energy ~ sum(E^2 + H^2) (bounded under the update)."""
        e = arrays["ez"].astype(np.float64)
        h = arrays["hy"].astype(np.float64)
        return float(np.sum(e * e) + np.sum(h * h))
