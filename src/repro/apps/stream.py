"""STREAM: the memory-bandwidth benchmark (MK-Seq / MK-Loop).

Four kernels over 1-D arrays ``a``, ``b``, ``c`` of 62,914,560 float32
elements (~0.7 GB total):

=========  ==================
``copy``   ``c = a``
``scale``  ``b = k * c``
``add``    ``c = a + b``
``triad``  ``a = b + k * c``
=========  ==================

**STREAM-Seq** executes the four kernels once (MK-Seq); **STREAM-Loop**
iterates them (MK-Loop, the original form).  Both are evaluated with and
without inter-kernel synchronization; synchronization "is originally not
needed, but we manually add it to mimic applications that need
synchronization" (paper §IV-B3) — pass ``sync=True`` for the ``-w``
variants.

The kernels perform no arithmetic to speak of; everything is bandwidth,
which is why on the paper's platform the PCIe link dominates the GPU side
("the data transfer takes around 88% of the overall execution time" for
Only-GPU) and the CPU receives the larger share of the unified split.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.platform.device import DeviceKind
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec
from repro.units import FLOAT32_BYTES

#: the scalar of scale/triad
SCALAR = 3.0

CPU_MEM_EFF = 0.44  # OmpSs task-based STREAM, m threads, no NT stores
GPU_MEM_EFF = 0.70
CPU_COMPUTE_EFF = 0.10
GPU_COMPUTE_EFF = 0.10


def _copy_impl(arrays, lo, hi, n):
    arrays["c"][lo:hi] = arrays["a"][lo:hi]


def _scale_impl(arrays, lo, hi, n, *, scalar):
    arrays["b"][lo:hi] = scalar * arrays["c"][lo:hi]


def _add_impl(arrays, lo, hi, n):
    arrays["c"][lo:hi] = arrays["a"][lo:hi] + arrays["b"][lo:hi]


def _triad_impl(arrays, lo, hi, n, *, scalar):
    arrays["a"][lo:hi] = arrays["b"][lo:hi] + scalar * arrays["c"][lo:hi]


class _StreamBase(Application):
    """Shared machinery of STREAM-Seq and STREAM-Loop."""

    origin = "The STREAM benchmark"
    paper_n = 62_914_560
    needs_sync = False  # sync is optional, added to mimic syncing apps

    def _kernels(self, n: int) -> tuple[list[Kernel], dict[str, ArraySpec]]:
        specs = {
            name: ArraySpec(name, n, FLOAT32_BYTES) for name in ("a", "b", "c")
        }

        def cost(arrays_touched: int, flops: float) -> KernelCostModel:
            return KernelCostModel(
                flops_per_elem=flops,
                mem_bytes_per_elem=float(arrays_touched * FLOAT32_BYTES),
                compute_eff={
                    DeviceKind.CPU: CPU_COMPUTE_EFF,
                    DeviceKind.GPU: GPU_COMPUTE_EFF,
                },
                mem_eff={DeviceKind.CPU: CPU_MEM_EFF, DeviceKind.GPU: GPU_MEM_EFF},
            )

        kernels = [
            Kernel(
                "copy",
                cost(2, 0.0),
                (
                    AccessSpec(specs["a"], AccessMode.IN),
                    AccessSpec(specs["c"], AccessMode.OUT),
                ),
                impl=_copy_impl,
            ),
            Kernel(
                "scale",
                cost(2, 1.0),
                (
                    AccessSpec(specs["c"], AccessMode.IN),
                    AccessSpec(specs["b"], AccessMode.OUT),
                ),
                impl=_scale_impl,
                params={"scalar": SCALAR},
            ),
            Kernel(
                "add",
                cost(3, 1.0),
                (
                    AccessSpec(specs["a"], AccessMode.IN),
                    AccessSpec(specs["b"], AccessMode.IN),
                    AccessSpec(specs["c"], AccessMode.OUT),
                ),
                impl=_add_impl,
            ),
            Kernel(
                "triad",
                cost(3, 2.0),
                (
                    AccessSpec(specs["b"], AccessMode.IN),
                    AccessSpec(specs["c"], AccessMode.IN),
                    AccessSpec(specs["a"], AccessMode.OUT),
                ),
                impl=_triad_impl,
                params={"scalar": SCALAR},
            ),
        ]
        return kernels, specs

    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        n = self.default_n(n)
        iterations = self.default_iterations(iterations)
        sync = self.needs_sync if sync is None else sync
        kernels, arrays = self._kernels(n)
        return self._loop_program(
            lambda it: [(k, n) for k in kernels],
            arrays,
            iterations=iterations,
            sync=sync,
        )

    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            "a": rng.standard_normal(n).astype(np.float32),
            "b": np.zeros(n, dtype=np.float32),
            "c": np.zeros(n, dtype=np.float32),
        }

    @staticmethod
    def reference_pass(arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """One sequential STREAM pass over copies of the inputs."""
        a = arrays["a"].copy()
        b = arrays["b"].copy()
        c = arrays["c"].copy()
        c = a.copy()
        b = (SCALAR * c).astype(np.float32)
        c = a + b
        a = (b + SCALAR * c).astype(np.float32)
        return {"a": a, "b": b, "c": c}


class StreamSeq(_StreamBase):
    """STREAM with a single pass over the four kernels (MK-Seq)."""

    name = "STREAM-Seq"
    paper_class = "MK-Seq"
    paper_iterations = 1


class StreamLoop(_StreamBase):
    """The original iterated STREAM (MK-Loop)."""

    name = "STREAM-Loop"
    paper_class = "MK-Loop"
    paper_iterations = 10
