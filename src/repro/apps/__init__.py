"""The paper's evaluation workloads (Table II) plus extensions.

=================  ========  ==========================================
Application        Class     Origin (paper)
=================  ========  ==========================================
``MatrixMul``      SK-One    Nvidia OpenCL SDK
``BlackScholes``   SK-One    Nvidia OpenCL SDK
``Nbody``          SK-Loop   Mont-Blanc benchmark suite
``HotSpot``        SK-Loop   Rodinia benchmark suite
``STREAM-Seq``     MK-Seq    the STREAM benchmark (one pass)
``STREAM-Loop``    MK-Loop   the STREAM benchmark (iterated)
``Cholesky``       MK-DAG    extension (blocked Cholesky, ref [20])
=================  ========  ==========================================

Every application provides NumPy kernel bodies (functional correctness),
analytic cost models (simulated timing), and the paper's problem sizes.
"""

from repro.apps.base import Application
from repro.apps.matrixmul import MatrixMul
from repro.apps.blackscholes import BlackScholes
from repro.apps.nbody import Nbody
from repro.apps.hotspot import HotSpot
from repro.apps.stream import StreamLoop, StreamSeq
from repro.apps.cholesky import Cholesky
from repro.apps.fdtd import FDTD
from repro.apps.spmv import SpMV
from repro.apps.registry import all_applications, get_application, paper_applications

__all__ = [
    "Application",
    "MatrixMul",
    "BlackScholes",
    "Nbody",
    "HotSpot",
    "StreamSeq",
    "StreamLoop",
    "Cholesky",
    "FDTD",
    "SpMV",
    "all_applications",
    "get_application",
    "paper_applications",
]
