"""A synthetic kernel-structure study (stand-in for paper ref [18]).

The paper grounds its classification on a study of five benchmark suites —
86 applications in total — and reports that the five classes cover all of
them.  The tech report [18] is not available, so this module supplies a
*synthetic* population of kernel-structure descriptors with the same
aggregate shape: 86 applications drawn from five suites, spanning all five
classes, including the III-V cases where individual kernels carry inner
loops (which, per §III-B, do not change the class).

Each descriptor can be *realized* as a toy
:class:`~repro.runtime.graph.Program` so the classifier is exercised on
real program objects, not just on labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.kernels import AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec

#: the five suites the study draws from
SUITES = ("Rodinia", "Parboil", "NVIDIA SDK", "AMD SDK", "Mont-Blanc")


@dataclass(frozen=True)
class StructureDescriptor:
    """Shape summary of one application's kernel structure."""

    name: str
    suite: str
    n_kernels: int
    #: "sequence" | "loop" | "dag"
    flow: str
    #: loop iterations of the outer loop (1 = not looped)
    iterations: int
    #: expected class label ("SK-One" ... "MK-DAG")
    expected_class: str


def _mk(name, suite, n_kernels, flow, iterations, expected) -> StructureDescriptor:
    return StructureDescriptor(name, suite, n_kernels, flow, iterations, expected)


def synthetic_suite() -> list[StructureDescriptor]:
    """86 structure descriptors across the five suites and five classes.

    The per-class counts loosely follow the prose of the paper (single
    kernel and iterated single kernel dominate GPU benchmark suites; full
    DAGs are rare).
    """
    out: list[StructureDescriptor] = []
    counter = 0

    def take(suite: str, cls: str, count: int) -> None:
        nonlocal counter
        for _ in range(count):
            counter += 1
            if cls == "SK-One":
                out.append(_mk(f"app{counter:02d}", suite, 1, "sequence", 1, cls))
            elif cls == "SK-Loop":
                out.append(_mk(f"app{counter:02d}", suite, 1, "loop", 6, cls))
            elif cls == "MK-Seq":
                out.append(_mk(f"app{counter:02d}", suite, 3, "sequence", 1, cls))
            elif cls == "MK-Loop":
                out.append(_mk(f"app{counter:02d}", suite, 3, "loop", 5, cls))
            else:
                out.append(_mk(f"app{counter:02d}", suite, 4, "dag", 1, cls))

    take("Rodinia", "SK-One", 4)
    take("Rodinia", "SK-Loop", 8)
    take("Rodinia", "MK-Seq", 4)
    take("Rodinia", "MK-Loop", 6)
    take("Rodinia", "MK-DAG", 1)
    take("Parboil", "SK-One", 3)
    take("Parboil", "SK-Loop", 3)
    take("Parboil", "MK-Seq", 3)
    take("Parboil", "MK-Loop", 2)
    take("NVIDIA SDK", "SK-One", 12)
    take("NVIDIA SDK", "SK-Loop", 5)
    take("NVIDIA SDK", "MK-Seq", 5)
    take("NVIDIA SDK", "MK-Loop", 2)
    take("NVIDIA SDK", "MK-DAG", 1)
    take("AMD SDK", "SK-One", 10)
    take("AMD SDK", "SK-Loop", 4)
    take("AMD SDK", "MK-Seq", 4)
    take("AMD SDK", "MK-Loop", 2)
    take("Mont-Blanc", "SK-One", 2)
    take("Mont-Blanc", "SK-Loop", 3)
    take("Mont-Blanc", "MK-Seq", 1)
    take("Mont-Blanc", "MK-Loop", 1)
    assert len(out) == 86, f"expected 86 descriptors, built {len(out)}"
    return out


def realize_program(desc: StructureDescriptor, *, n: int = 1024) -> Program:
    """Build a toy program with the descriptor's kernel structure."""
    arrays = {
        f"x{i}": ArraySpec(f"x{i}", n, 4) for i in range(desc.n_kernels + 1)
    }
    cost = KernelCostModel(flops_per_elem=2.0, mem_bytes_per_elem=8.0)
    kernels = [
        Kernel(
            f"k{i}",
            cost,
            (
                AccessSpec(arrays[f"x{i}"], AccessMode.IN),
                AccessSpec(arrays[f"x{i + 1}"], AccessMode.OUT),
            ),
        )
        for i in range(desc.n_kernels)
    ]
    invocations: list[KernelInvocation] = []
    next_id = 0

    def emit(kernel: Kernel, iteration: int, sync: bool) -> None:
        nonlocal next_id
        invocations.append(
            KernelInvocation(
                invocation_id=next_id,
                kernel=kernel,
                n=n,
                iteration=iteration,
                sync_after=sync,
            )
        )
        next_id += 1

    if desc.flow == "dag":
        # a fork-join over independent kernels: k0 then k1..k_{m-2} reading
        # k0's output into separate arrays, then a join kernel
        fork = [
            Kernel(
                f"k{i}",
                cost,
                (
                    AccessSpec(arrays["x1"], AccessMode.IN),
                    AccessSpec(arrays[f"x{i + 1}"], AccessMode.OUT),
                ),
            )
            for i in range(1, desc.n_kernels - 1)
        ]
        emit(kernels[0], 0, False)
        for k in fork:
            emit(k, 0, False)
        join = Kernel(
            f"k{desc.n_kernels - 1}",
            cost,
            tuple(
                AccessSpec(arrays[f"x{i + 1}"], AccessMode.IN)
                for i in range(1, desc.n_kernels - 1)
            )
            + (AccessSpec(arrays[f"x{desc.n_kernels}"], AccessMode.OUT),),
        )
        emit(join, 0, False)
    else:
        for it in range(desc.iterations):
            for k in kernels:
                emit(k, it, desc.flow == "loop" and desc.n_kernels == 1)
    return Program(invocations=invocations, arrays=arrays)
