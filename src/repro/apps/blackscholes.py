"""BlackScholes: European option pricing (SK-One, Nvidia OpenCL SDK).

A single embarrassingly parallel kernel evaluates the Black-Scholes
closed-form price of a call and a put per option.  The paper prices
80,530,632 options (five float arrays — spot, strike, expiry, call, put —
totalling ~1.5 GB) and observes that the workload is *transfer-bound* on
the GPU: "the data transfer takes 37.5x more time than the kernel
computation on the GPU", driving Glinda to a 41%/59% CPU/GPU split.

Calibration: the GPU runs the arithmetic-heavy kernel near its
special-function throughput (memory-bound at ~20 B/option); the CPU runs
the sequential scalar code with ``expf``/``logf`` calls, two orders of
magnitude slower per option.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.platform.device import DeviceKind
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec
from repro.units import FLOAT32_BYTES

#: riskless rate and volatility, as in the SDK sample
RISKFREE = 0.02
VOLATILITY = 0.30

#: flops per option (exp/log/sqrt/div expanded to flop-equivalents)
FLOPS_PER_OPTION = 60.0
#: bytes per option in device memory (3 reads + 2 writes, float32)
BYTES_PER_OPTION = 5 * FLOAT32_BYTES

CPU_COMPUTE_EFF = 0.032  # sequential scalar transcendentals
GPU_COMPUTE_EFF = 0.200  # SFU-assisted
CPU_MEM_EFF = 0.60
GPU_MEM_EFF = 1.00


def _cnd(d: np.ndarray) -> np.ndarray:
    """Cumulative normal distribution (Abramowitz & Stegun 26.2.17)."""
    a1, a2, a3, a4, a5 = (
        0.31938153, -0.356563782, 1.781477937, -1.821255978, 1.330274429,
    )
    k = 1.0 / (1.0 + 0.2316419 * np.abs(d))
    poly = k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))))
    w = 1.0 - 1.0 / np.sqrt(2.0 * np.pi) * np.exp(-0.5 * d * d) * poly
    return np.where(d < 0, 1.0 - w, w)


def _blackscholes_impl(
    arrays: dict[str, np.ndarray], lo: int, hi: int, n: int,
    *, riskfree: float, volatility: float,
) -> None:
    s = arrays["S"][lo:hi].astype(np.float64)
    k = arrays["K"][lo:hi].astype(np.float64)
    t = arrays["T"][lo:hi].astype(np.float64)
    sqrt_t = np.sqrt(t)
    d1 = (np.log(s / k) + (riskfree + 0.5 * volatility**2) * t) / (
        volatility * sqrt_t
    )
    d2 = d1 - volatility * sqrt_t
    cnd_d1 = _cnd(d1)
    cnd_d2 = _cnd(d2)
    discount = k * np.exp(-riskfree * t)
    arrays["call"][lo:hi] = (s * cnd_d1 - discount * cnd_d2).astype(np.float32)
    arrays["put"][lo:hi] = (
        discount * (1.0 - cnd_d2) - s * (1.0 - cnd_d1)
    ).astype(np.float32)


class BlackScholes(Application):
    """Option-pricing kernel over a 1-D array of options."""

    name = "BlackScholes"
    paper_class = "SK-One"
    needs_sync = False
    origin = "Nvidia OpenCL SDK"
    paper_n = 80_530_632
    paper_iterations = 1

    def _kernel(self, n: int) -> tuple[Kernel, dict[str, ArraySpec]]:
        specs = {
            name: ArraySpec(name, n, FLOAT32_BYTES)
            for name in ("S", "K", "T", "call", "put")
        }
        cost = KernelCostModel(
            flops_per_elem=FLOPS_PER_OPTION,
            mem_bytes_per_elem=float(BYTES_PER_OPTION),
            compute_eff={
                DeviceKind.CPU: CPU_COMPUTE_EFF,
                DeviceKind.GPU: GPU_COMPUTE_EFF,
            },
            mem_eff={DeviceKind.CPU: CPU_MEM_EFF, DeviceKind.GPU: GPU_MEM_EFF},
        )
        kernel = Kernel(
            name="blackScholes",
            cost=cost,
            accesses=(
                AccessSpec(specs["S"], AccessMode.IN),
                AccessSpec(specs["K"], AccessMode.IN),
                AccessSpec(specs["T"], AccessMode.IN),
                AccessSpec(specs["call"], AccessMode.OUT),
                AccessSpec(specs["put"], AccessMode.OUT),
            ),
            impl=_blackscholes_impl,
            params={"riskfree": RISKFREE, "volatility": VOLATILITY},
        )
        return kernel, specs

    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        n = self.default_n(n)
        iterations = self.default_iterations(iterations)
        sync = self.needs_sync if sync is None else sync
        kernel, arrays = self._kernel(n)
        return self._loop_program(
            lambda it: [(kernel, n)], arrays, iterations=iterations, sync=sync
        )

    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            "S": rng.uniform(5.0, 30.0, n).astype(np.float32),
            "K": rng.uniform(1.0, 100.0, n).astype(np.float32),
            "T": rng.uniform(0.25, 10.0, n).astype(np.float32),
            "call": np.zeros(n, dtype=np.float32),
            "put": np.zeros(n, dtype=np.float32),
        }

    @staticmethod
    def put_call_parity_gap(arrays: dict[str, np.ndarray]) -> np.ndarray:
        """``call - put - (S - K e^{-rT})``; ~0 for correct prices."""
        s = arrays["S"].astype(np.float64)
        k = arrays["K"].astype(np.float64)
        t = arrays["T"].astype(np.float64)
        return (
            arrays["call"].astype(np.float64)
            - arrays["put"].astype(np.float64)
            - (s - k * np.exp(-RISKFREE * t))
        )
