"""HotSpot: thermal simulation on a 2-D grid (SK-Loop, Rodinia).

Each iteration updates every cell's temperature from its four neighbours,
the power dissipated in the cell, and the ambient coupling; the output grid
of one iteration is the input of the next, with a global synchronization in
between (paper §IV-B2).  The paper uses an 8192x8192 grid (~0.75 GB for the
two temperature buffers plus the power grid) partitioned row-wise.

The kernel is strongly memory-bound (a handful of flops per 16-24 bytes of
traffic), so on the paper's platform the *PCIe transfers* dominate the GPU
side and "HotSpot has better performance on the CPU" — the crossover this
application exists to exercise.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.platform.device import DeviceKind
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec
from repro.units import FLOAT32_BYTES

#: stencil flops per cell (4 neighbour diffs, power term, ambient term)
FLOPS_PER_CELL = 15.0
#: device-memory traffic per cell (src row + 2 halo rows amortized + dst + power)
BYTES_PER_CELL = 4 * FLOAT32_BYTES

#: physical update coefficients (Rodinia-flavoured, stability-safe)
COEFF_NEIGHBOUR = 0.1
COEFF_POWER = 0.05
COEFF_AMBIENT = 0.02
AMBIENT_TEMP = 80.0

CPU_COMPUTE_EFF = 0.20
GPU_COMPUTE_EFF = 0.30
CPU_MEM_EFF = 0.60
GPU_MEM_EFF = 0.60


def _hotspot_impl(
    arrays: dict[str, np.ndarray], lo: int, hi: int, n: int,
    *, cols: int, src: str, dst: str,
) -> None:
    """Stencil update of rows ``[lo, hi)`` (edge-clamped neighbours)."""
    t = arrays[src].reshape(n, cols).astype(np.float64)
    p = arrays["power"].reshape(n, cols).astype(np.float64)
    up = t[np.maximum(np.arange(lo, hi) - 1, 0), :]
    down = t[np.minimum(np.arange(lo, hi) + 1, n - 1), :]
    left = np.empty((hi - lo, cols)); left[:, 1:] = t[lo:hi, :-1]; left[:, 0] = t[lo:hi, 0]
    right = np.empty((hi - lo, cols)); right[:, :-1] = t[lo:hi, 1:]; right[:, -1] = t[lo:hi, -1]
    centre = t[lo:hi, :]
    new = (
        centre
        + COEFF_NEIGHBOUR * (up + down + left + right - 4.0 * centre)
        + COEFF_POWER * p[lo:hi, :]
        + COEFF_AMBIENT * (AMBIENT_TEMP - centre)
    )
    arrays[dst].reshape(n, cols)[lo:hi, :] = new.astype(np.float32)


class HotSpot(Application):
    """Row-partitioned iterative 5-point stencil with per-iteration sync."""

    name = "HotSpot"
    paper_class = "SK-Loop"
    needs_sync = True
    origin = "Rodinia benchmark suite"
    paper_n = 8192  # rows (grid is paper_n x paper_n)
    paper_iterations = 4

    def _kernels(self, n: int) -> tuple[dict[str, Kernel], dict[str, ArraySpec]]:
        elems = n * n
        specs = {
            "temp_a": ArraySpec("temp_a", elems, FLOAT32_BYTES),
            "temp_b": ArraySpec("temp_b", elems, FLOAT32_BYTES),
            "power": ArraySpec("power", elems, FLOAT32_BYTES),
        }
        cost = KernelCostModel(
            flops_per_elem=FLOPS_PER_CELL * n,  # per row
            mem_bytes_per_elem=float(BYTES_PER_CELL * n),
            compute_eff={
                DeviceKind.CPU: CPU_COMPUTE_EFF,
                DeviceKind.GPU: GPU_COMPUTE_EFF,
            },
            mem_eff={DeviceKind.CPU: CPU_MEM_EFF, DeviceKind.GPU: GPU_MEM_EFF},
        )

        def step(src: str, dst: str) -> Kernel:
            return Kernel(
                name="hotspotStep",
                cost=cost,
                accesses=(
                    AccessSpec(specs[src], AccessMode.IN,
                               AccessPattern.PARTITIONED, n),
                    AccessSpec(specs["power"], AccessMode.IN,
                               AccessPattern.PARTITIONED, n),
                    AccessSpec(specs[dst], AccessMode.OUT,
                               AccessPattern.PARTITIONED, n),
                ),
                impl=_hotspot_impl,
                params={"cols": n, "src": src, "dst": dst},
            )

        return {"even": step("temp_a", "temp_b"),
                "odd": step("temp_b", "temp_a")}, specs

    def program(
        self,
        n: int | None = None,
        *,
        iterations: int | None = None,
        sync: bool | None = None,
    ) -> Program:
        n = self.default_n(n)
        iterations = self.default_iterations(iterations)
        sync = self.needs_sync if sync is None else sync
        kernels, arrays = self._kernels(n)

        def per_iteration(it: int):
            return [(kernels["even" if it % 2 == 0 else "odd"], n)]

        return self._loop_program(
            per_iteration, arrays, iterations=iterations, sync=sync
        )

    def arrays(self, n: int, *, seed: int = 0) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            "temp_a": rng.uniform(70.0, 90.0, n * n).astype(np.float32),
            "temp_b": np.zeros(n * n, dtype=np.float32),
            "power": rng.uniform(0.0, 1.0, n * n).astype(np.float32),
        }
